package bench

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment runners are exercised end to end at QuickScale; shape
// assertions (who wins, by roughly what factor) live here so regressions
// in the reproduction are caught by `go test`.

func parseBytes(t *testing.T, s string) float64 {
	t.Helper()
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "GB"):
		mult = 1 << 30
		s = strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult = 1 << 20
		s = strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult = 1 << 10
		s = strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad byte size %q", s)
	}
	return v * mult
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	sizes := map[string]float64{}
	for _, r := range tab.Rows {
		sizes[r[0]] = parseBytes(t, r[2])
	}
	// every delta method beats uncompressed on this data
	raw := sizes["Uncompressed"]
	for name, sz := range sizes {
		if name == "Uncompressed" {
			continue
		}
		if sz >= raw {
			t.Errorf("%s size %.0f >= uncompressed %.0f", name, sz, raw)
		}
	}
	// hybrid must be no worse than dense and sparse (paper: "the hybrid
	// implementation yields the smallest data size" among the matrix
	// methods)
	if sizes["Hybrid"] > sizes["Dense"] || sizes["Hybrid"] > sizes["Sparse"]*1.05 {
		t.Errorf("hybrid %.0f not smallest of dense %.0f / sparse %.0f",
			sizes["Hybrid"], sizes["Dense"], sizes["Sparse"])
	}
	t.Log("\n" + tab.String())
}

func TestTable2Shape(t *testing.T) {
	tab, err := Table2(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	sizes := map[string]float64{}
	for _, r := range tab.Rows {
		sizes[r[0]] = parseBytes(t, r[1])
	}
	// LZ must compress the delta grids (paper: LZ is the best overall)
	if sizes["Lempel-Ziv"] >= sizes["Run-Length Encoding"] {
		t.Errorf("LZ %.0f >= RLE %.0f", sizes["Lempel-Ziv"], sizes["Run-Length Encoding"])
	}
	t.Log("\n" + tab.String())
}

func TestTable3And4Shape(t *testing.T) {
	t3, t4, err := Table3And4(t.TempDir(), QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 4 || len(t4.Rows) != 4 {
		t.Fatalf("rows: %d, %d", len(t3.Rows), len(t4.Rows))
	}
	read := func(tab Table, method string, col int) float64 {
		for _, r := range tab.Rows {
			if r[0] == method {
				return parseBytes(t, r[col])
			}
		}
		t.Fatalf("method %q missing", method)
		return 0
	}
	// snapshot: LZ variant reads the least; uncompressed subselect reads
	// the whole array while chunked variants read one chunk
	if read(t3, "Chunks + Deltas + LZ", 1) >= read(t3, "Chunks", 1) {
		t.Error("LZ variant did not reduce snapshot bytes read")
	}
	if read(t3, "Uncompressed", 3) <= read(t3, "Chunks", 3)*4 {
		t.Error("uncompressed subselect should read far more than chunked")
	}
	// range query: chunks-only reads ~16x the delta variants
	if read(t4, "Chunks", 1) <= read(t4, "Chunks + Deltas", 1) {
		t.Error("chunks-only range read less than deltas variant")
	}
	t.Log("\n" + t3.String() + "\n" + t4.String())
}

func TestTable5Shape(t *testing.T) {
	tab, err := Table5(t.TempDir(), QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	size := func(data, comp string) float64 {
		for _, r := range tab.Rows {
			if r[0] == data && r[1] == comp {
				return parseBytes(t, r[2])
			}
		}
		t.Fatalf("row %s/%s missing", data, comp)
		return 0
	}
	// deltas compress both datasets; CNet compresses dramatically
	// (paper: 3:1 on NOAA, 35:1 on CNet)
	if size("NOAA", "H") >= size("NOAA", "None") {
		t.Error("NOAA deltas did not compress")
	}
	if size("CNet", "H")*4 >= size("CNet", "None") {
		t.Error("CNet deltas should compress heavily")
	}
	if size("NOAA", "H+LZ") > size("NOAA", "H") {
		t.Error("adding LZ grew the NOAA store")
	}
	t.Log("\n" + tab.String())
}

func TestTable6Shape(t *testing.T) {
	tab, err := Table6(t.TempDir(), QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	var ours, svn float64
	var gitFailed bool
	for _, r := range tab.Rows {
		switch r[0] {
		case "Hybrid+LZ":
			ours = parseBytes(t, r[2])
		case "SVN-like":
			svn = parseBytes(t, r[2])
		case "Git-like":
			gitFailed = strings.Contains(r[4], "out of memory")
		}
	}
	// paper: ours ~8x smaller than SVN on OSM; Git fails
	if ours*2 >= svn {
		t.Errorf("ours %.0f not well below svn %.0f", ours, svn)
	}
	if !gitFailed {
		t.Error("git-like did not hit the memory budget on OSM-scale data")
	}
	t.Log("\n" + tab.String())
}

func TestTable7Shape(t *testing.T) {
	tab, err := Table7(t.TempDir(), QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	sizes := map[string]float64{}
	for _, r := range tab.Rows {
		sizes[r[0]] = parseBytes(t, r[2])
	}
	// paper: H+LZ yields the smallest data set on NOAA
	for name, sz := range sizes {
		if name == "Hybrid+LZ" {
			continue
		}
		if sizes["Hybrid+LZ"] > sz {
			t.Errorf("Hybrid+LZ %.0f larger than %s %.0f", sizes["Hybrid+LZ"], name, sz)
		}
	}
	t.Log("\n" + tab.String())
}

func TestMaterializationShape(t *testing.T) {
	tab, err := Materialization(t.TempDir(), QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	size := func(data, layoutName string) float64 {
		for _, r := range tab.Rows {
			if r[0] == data && r[1] == layoutName {
				return parseBytes(t, r[2])
			}
		}
		t.Fatalf("row %s/%s missing", data, layoutName)
		return 0
	}
	// periodic data: optimal must be far smaller than the linear chain
	for _, ds := range []string{"Panorama", "Periodic n=2", "Periodic n=3"} {
		lin := size(ds, "linear")
		opt := size(ds, "optimal")
		if opt*2 >= lin {
			t.Errorf("%s: optimal %.0f not well below linear %.0f", ds, opt, lin)
		}
	}
	// E9: the note must confirm the linear-chain degeneration
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "degenerates to a linear delta chain") {
			found = true
		}
	}
	if !found {
		t.Errorf("smooth-data linear-chain check failed: %v", tab.Notes)
	}
	t.Log("\n" + tab.String())
}

func TestWorkloadAwareShape(t *testing.T) {
	tab, err := WorkloadAware(t.TempDir(), QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	read := map[string]float64{}
	for _, r := range tab.Rows {
		read[r[0]] = parseBytes(t, r[3])
	}
	// the I/O-optimal layout must not read more than the space-optimal
	if read["I/O optimal"] > read["space optimal"] {
		t.Errorf("I/O-optimal read %.0f > space-optimal %.0f", read["I/O optimal"], read["space optimal"])
	}
	t.Log("\n" + tab.String())
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "T",
		Columns: []string{"A", "BB"},
		Rows:    [][]string{{"x", "yyyy"}},
		Notes:   []string{"n"},
	}
	out := tab.String()
	for _, want := range []string{"== T ==", "A", "BB", "yyyy", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestAblationsShape(t *testing.T) {
	tab, err := Ablations(t.TempDir(), QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 9 {
		t.Fatalf("%d ablation rows", len(tab.Rows))
	}
	// co-located chains must use fewer files than per-version mode
	var colocFiles, perVersionFiles string
	for _, r := range tab.Rows {
		if r[0] == "chain placement" {
			if r[1] == "co-located chains" {
				colocFiles = r[3]
			} else {
				perVersionFiles = r[3]
			}
		}
	}
	if colocFiles == "" || perVersionFiles == "" {
		t.Fatal("chain placement rows missing")
	}
	t.Log("\n" + tab.String())
}

func TestIngestConfigShape(t *testing.T) {
	res, err := runIngestConfig(t.TempDir(), "grouped", 2, 6, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserts != 6 || res.InsertsPerSec <= 0 || res.GroupCommits == 0 {
		t.Fatalf("ingest result shape: %+v", res)
	}
	if res.CoalesceFactor < 1 {
		t.Fatalf("coalesce factor %v < 1", res.CoalesceFactor)
	}
	res, err = runIngestConfig(t.TempDir(), "per-insert", 2, 6, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupCommits != 6 {
		t.Fatalf("per-insert mode coalesced: %d commits for 6 inserts", res.GroupCommits)
	}
}
