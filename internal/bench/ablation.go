package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"arrayvers/internal/array"
	"arrayvers/internal/compress"
	"arrayvers/internal/core"
	"arrayvers/internal/datasets"
	"arrayvers/internal/matmat"
)

// Ablations isolates the design choices the paper motivates but does not
// table individually:
//
//   - chunk size (the 10 MB compile-time default, §III-B.1 / §V-B "we
//     experimented with various chunk sizes")
//   - co-located chains vs per-version files (§III-B.3, "co-located
//     chains ... are more efficient")
//   - sampled vs exact materialization-matrix construction (§IV-A)
//   - delta-candidate window for automatic delta-ing (§II-A / §IV-E)
func Ablations(workDir string, sc Scale) (Table, error) {
	t := Table{
		Title:   "Ablations — chunking, co-location, matrix sampling, delta candidates",
		Columns: []string{"Ablation", "Setting", "Size", "Metric"},
	}
	noaa := datasets.NOAA(datasets.NOAAConfig{Side: sc.NOAASide, Versions: sc.NOAAVersions, Attrs: 1, Seed: sc.Seed})

	build := func(dir string, opts core.Options) (*core.Store, error) {
		s, err := core.Open(dir, opts)
		if err != nil {
			return nil, err
		}
		sch := array.Schema{
			Name:  "A",
			Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: sc.NOAASide - 1}, {Name: "X", Lo: 0, Hi: sc.NOAASide - 1}},
			Attrs: []array.Attribute{{Name: "V", Type: array.Float32}},
		}
		if err := s.CreateArray(sch); err != nil {
			return nil, err
		}
		for _, v := range noaa {
			if _, err := s.Insert("A", core.DensePayload(v[0])); err != nil {
				return nil, err
			}
		}
		return s, nil
	}

	// 1. chunk size sweep: subselect cost vs chunk size
	for _, cb := range []int64{sc.ChunkBytes / 8, sc.ChunkBytes, sc.ChunkBytes * 8} {
		opts := core.DefaultOptions()
		opts.ChunkBytes = cb
		dir := filepath.Join(workDir, fmt.Sprintf("ab-chunk-%d", cb))
		s, err := build(dir, opts)
		if err != nil {
			return Table{}, err
		}
		box := array.NewBox([]int64{0, 0}, []int64{sc.NOAASide / 8, sc.NOAASide / 8})
		s.ResetStats()
		d, err := timed(func() error {
			_, err := s.SelectRegion("A", sc.NOAAVersions, box)
			return err
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			"chunk size", fmtBytes(cb), fmtBytes(s.DiskBytes()),
			fmt.Sprintf("subselect read %s in %s", fmtBytes(s.Stats().BytesRead), fmtDur(d)),
		})
		os.RemoveAll(dir)
	}

	// 2. co-location: same data, chain files vs per-version files
	for _, co := range []bool{true, false} {
		opts := core.DefaultOptions()
		opts.ChunkBytes = sc.ChunkBytes
		opts.CoLocate = co
		dir := filepath.Join(workDir, fmt.Sprintf("ab-coloc-%v", co))
		s, err := build(dir, opts)
		if err != nil {
			return Table{}, err
		}
		// chain read: reconstruct the newest version (walks every delta)
		d, err := timed(func() error {
			_, err := s.Select("A", sc.NOAAVersions)
			return err
		})
		if err != nil {
			return Table{}, err
		}
		label := "per-version files"
		if co {
			label = "co-located chains"
		}
		files := countFiles(filepath.Join(dir, "A", "chunks"))
		t.Rows = append(t.Rows, []string{
			"chain placement", label, fmtBytes(s.DiskBytes()),
			fmt.Sprintf("chain read %s, %d files", fmtDur(d), files),
		})
		os.RemoveAll(dir)
	}

	// 3. materialization matrix: exact vs sampled construction
	versions := make([]*array.Dense, len(noaa))
	for i := range noaa {
		versions[i] = noaa[i][0]
	}
	dExact, err := timed(func() error {
		_, err := matmat.Compute(versions, matmat.Options{})
		return err
	})
	if err != nil {
		return Table{}, err
	}
	var exact, sampled *matmat.Matrix
	exact, _ = matmat.Compute(versions, matmat.Options{})
	dSampled, err := timed(func() error {
		var err error
		sampled, err = matmat.Compute(versions, matmat.Options{Sample: 2048, Seed: 1})
		return err
	})
	if err != nil {
		return Table{}, err
	}
	maxErr := 0.0
	for i := 0; i < exact.N; i++ {
		for j := 0; j < i; j++ {
			e := float64(sampled.Cost[i][j])/float64(exact.Cost[i][j]) - 1
			if e < 0 {
				e = -e
			}
			if e > maxErr {
				maxErr = e
			}
		}
	}
	t.Rows = append(t.Rows,
		[]string{"matrix build", "exact O(n²) encodes", "—", fmtDur(dExact)},
		[]string{"matrix build", "2048-cell sample", "—",
			fmt.Sprintf("%s, max size error %.0f%%", fmtDur(dSampled), 100*maxErr)})

	// 4. delta-candidate window K for automatic delta-ing
	for _, k := range []int{1, 3} {
		opts := core.DefaultOptions()
		opts.ChunkBytes = sc.ChunkBytes
		opts.DeltaCandidates = k
		dir := filepath.Join(workDir, fmt.Sprintf("ab-cand-%d", k))
		s, err := build(dir, opts)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			"delta candidates", fmt.Sprintf("K=%d", k), fmtBytes(s.DiskBytes()), "insert-time base search",
		})
		os.RemoveAll(dir)
	}

	// 5. adaptive LZ (the paper's future-work item): compression enabled
	// per chunk only when a payload sample predicts a worthwhile ratio
	for _, mode := range []struct {
		label    string
		adaptive bool
	}{{"always-LZ", false}, {"adaptive-LZ", true}} {
		opts := core.DefaultOptions()
		opts.ChunkBytes = sc.ChunkBytes
		opts.Codec = compress.LZ
		opts.AdaptiveCodec = mode.adaptive
		dir := filepath.Join(workDir, "ab-"+mode.label)
		var s *core.Store
		dImport, err := timed(func() error {
			var err error
			s, err = build(dir, opts)
			return err
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			"adaptive codec", mode.label, fmtBytes(s.DiskBytes()),
			fmt.Sprintf("import %s", fmtDur(dImport)),
		})
		os.RemoveAll(dir)
	}
	return t, nil
}

func countFiles(dir string) int {
	n := 0
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			n++
		}
		return nil
	})
	return n
}
