package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"arrayvers/internal/array"
	"arrayvers/internal/compress"
	"arrayvers/internal/core"
	"arrayvers/internal/datasets"
	"arrayvers/internal/vcs"
	"arrayvers/internal/workload"
)

// compression variants of Table V.
type compVariant struct {
	name string
	opts func(core.Options) core.Options
}

func compVariants(sc Scale) []compVariant {
	return []compVariant{
		{"H+LZ", func(o core.Options) core.Options { o.Codec = compress.LZ; return o }},
		{"H", func(o core.Options) core.Options { return o }},
		{"None", func(o core.Options) core.Options { o.AutoDelta = false; return o }},
	}
}

// Table5 — E5: the five workloads on the NOAA (dense) and ConceptNet
// (sparse) substitutes under three compression configurations.
func Table5(workDir string, sc Scale) (Table, error) {
	t := Table{
		Title:   "Table V — Workloads on NOAA and ConceptNet substitutes",
		Columns: []string{"Data", "Comp.", "Size", "Head", "Rand.", "Range", "Up.", "Mix."},
	}
	noaa := datasets.NOAA(datasets.NOAAConfig{Side: sc.NOAASide, Versions: sc.NOAAVersions, Attrs: 1, Seed: sc.Seed})
	cnet := datasets.ConceptNet(datasets.ConceptNetConfig{
		Dim: sc.CNetDim, NNZ: sc.CNetNNZ, Versions: sc.CNetVersions, Seed: sc.Seed,
	})
	for _, variant := range compVariants(sc) {
		row, err := table5Row(workDir, sc, "NOAA", variant, func(s *core.Store) (int, error) {
			sch := array.Schema{
				Name:  "NOAA",
				Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: sc.NOAASide - 1}, {Name: "X", Lo: 0, Hi: sc.NOAASide - 1}},
				Attrs: []array.Attribute{{Name: "V", Type: array.Float32}},
			}
			if err := s.CreateArray(sch); err != nil {
				return 0, err
			}
			for _, v := range noaa {
				if _, err := s.Insert("NOAA", core.DensePayload(v[0])); err != nil {
					return 0, err
				}
			}
			return len(noaa), nil
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, row)
	}
	for _, variant := range compVariants(sc) {
		row, err := table5Row(workDir, sc, "CNet", variant, func(s *core.Store) (int, error) {
			sch := array.Schema{
				Name:  "CNet",
				Dims:  []array.Dimension{{Name: "I", Lo: 0, Hi: sc.CNetDim - 1}, {Name: "J", Lo: 0, Hi: sc.CNetDim - 1}},
				Attrs: []array.Attribute{{Name: "W", Type: array.Int32}},
			}
			if err := s.CreateArray(sch); err != nil {
				return 0, err
			}
			for _, v := range cnet {
				if _, err := s.Insert("CNet", core.SparsePayload(v)); err != nil {
					return 0, err
				}
			}
			return len(cnet), nil
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func table5Row(workDir string, sc Scale, data string, variant compVariant, load func(*core.Store) (int, error)) ([]string, error) {
	opts := core.DefaultOptions()
	opts.ChunkBytes = sc.ChunkBytes
	opts = variant.opts(opts)
	dir := filepath.Join(workDir, "t5-"+data+"-"+sanitizeName(variant.name))
	defer os.RemoveAll(dir)
	s, err := core.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	n, err := load(s)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", data, variant.name, err)
	}
	size := s.DiskBytes()
	row := []string{data, variant.name, fmtBytes(size)}
	// Table V repetition counts
	suites := [][]workload.Op{
		workload.Head(n, 10, sc.Seed+1),
		workload.Random(n, 30, sc.Seed+2),
		workload.Range(n, 30, sc.Seed+3),
		workload.Updates(n, 5, sc.Seed+4),
		workload.Mixed(n, 15, sc.Seed+5),
	}
	for _, ops := range suites {
		d, err := timed(func() error { return runOps(s, data, ops, sc.Seed) })
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", data, variant.name, err)
		}
		row = append(row, fmtDur(d))
	}
	return row, nil
}

// runOps executes a workload against a store.
func runOps(s *core.Store, name string, ops []workload.Op, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	info, err := s.Info(name)
	if err != nil {
		return err
	}
	shape := info.Schema.Shape()
	sparse := info.SparseRep
	for _, op := range ops {
		switch op.Kind {
		case workload.SelectOne:
			if _, err := s.Select(name, op.Versions[0]); err != nil {
				return err
			}
		case workload.SelectRange:
			if sparse {
				if _, err := s.SelectSparseMulti(name, op.Versions, array.Box{}); err != nil {
					return err
				}
			} else {
				if _, err := s.SelectMulti(name, op.Versions); err != nil {
					return err
				}
			}
		case workload.Update:
			// a random modification derived from a random version
			updates := make([]core.CellUpdate, 4)
			for i := range updates {
				coords := make([]int64, len(shape))
				for d := range coords {
					coords[d] = rng.Int63n(shape[d])
				}
				updates[i] = core.CellUpdate{Coords: coords, Bits: int64(rng.Intn(1000))}
			}
			if _, err := s.Insert(name, core.DeltaListPayload(op.Versions[0], updates)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Table7 — E7: SVN and Git performance on the NOAA substitute, where
// every array is small enough for both baselines to handle.
func Table7(workDir string, sc Scale) (Table, error) {
	series := noaaSeries(sc)
	t := Table{
		Title:   "Table VII — SVN and Git vs ours on the NOAA substitute",
		Columns: []string{"Method", "Import Time", "Data Size", "1 Array Select"},
	}

	// ours: Uncompressed and Hybrid+LZ
	for _, mode := range []struct {
		name  string
		codec compress.Codec
		auto  bool
	}{
		{"Uncompressed", compress.None, false},
		{"Hybrid+LZ", compress.LZ, true},
	} {
		opts := core.DefaultOptions()
		opts.ChunkBytes = sc.ChunkBytes
		opts.Codec = mode.codec
		opts.AutoDelta = mode.auto
		dir := filepath.Join(workDir, "t7-"+sanitizeName(mode.name))
		s, err := core.Open(dir, opts)
		if err != nil {
			return Table{}, err
		}
		importTime, err := timed(func() error {
			for ai, chain := range series {
				name := fmt.Sprintf("NOAA%d", ai)
				sch := array.Schema{
					Name:  name,
					Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: sc.NOAASide - 1}, {Name: "X", Lo: 0, Hi: sc.NOAASide - 1}},
					Attrs: []array.Attribute{{Name: "V", Type: array.Float32}},
				}
				if err := s.CreateArray(sch); err != nil {
					return err
				}
				for _, v := range chain {
					if _, err := s.Insert(name, core.DensePayload(v)); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return Table{}, err
		}
		size := s.DiskBytes()
		selTime, err := timed(func() error {
			for ai := range series {
				if _, err := s.Select(fmt.Sprintf("NOAA%d", ai), len(series[ai])); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{mode.name, fmtDur(importTime), fmtBytes(size), fmtDur(selTime)})
		os.RemoveAll(dir)
	}

	// SVN-like (deltification effective at this file size)
	svnDir := filepath.Join(workDir, "t7-svn")
	svn, err := vcs.NewSVN(svnDir, vcs.SVNOptions{})
	if err != nil {
		return Table{}, err
	}
	svnImport, err := timed(func() error {
		for ai, chain := range series {
			path := fmt.Sprintf("noaa%d.dat", ai)
			for _, v := range chain {
				if _, err := svn.Commit(path, array.MarshalDense(v)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	svnSize, err := svn.DiskBytes()
	if err != nil {
		return Table{}, err
	}
	svnSel, err := timed(func() error {
		for ai := range series {
			raw, err := svn.Checkout(fmt.Sprintf("noaa%d.dat", ai), len(series[ai])-1)
			if err != nil {
				return err
			}
			if _, err := array.UnmarshalDense(raw); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{"SVN-like", fmtDur(svnImport), fmtBytes(svnSize), fmtDur(svnSel)})
	os.RemoveAll(svnDir)

	// Git-like with repack (the paper: Git loaded NOAA "although it took
	// much longer than the other systems")
	gitDir := filepath.Join(workDir, "t7-git")
	git, err := vcs.NewGit(gitDir, vcs.GitOptions{MemoryBudget: sc.GitMemoryBudget})
	if err != nil {
		return Table{}, err
	}
	gitImport, err := timed(func() error {
		for ai, chain := range series {
			path := fmt.Sprintf("noaa%d.dat", ai)
			for _, v := range chain {
				if _, err := git.Commit(path, array.MarshalDense(v)); err != nil {
					return err
				}
			}
		}
		return git.Repack()
	})
	if err != nil {
		return Table{}, fmt.Errorf("git on NOAA: %w", err)
	}
	gitSize, err := git.DiskBytes()
	if err != nil {
		return Table{}, err
	}
	gitSel, err := timed(func() error {
		for ai := range series {
			raw, err := git.Checkout(fmt.Sprintf("noaa%d.dat", ai), len(series[ai])-1)
			if err != nil {
				return err
			}
			if _, err := array.UnmarshalDense(raw); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{"Git-like", fmtDur(gitImport), fmtBytes(gitSize), fmtDur(gitSel)})
	os.RemoveAll(gitDir)

	return t, nil
}
