package bench

import (
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"arrayvers/client"
	"arrayvers/internal/array"
	"arrayvers/internal/core"
	"arrayvers/internal/server"
)

// The server experiment measures the avstored service layer: remote
// select throughput through the HTTP + binary-frame wire path as a
// function of client fan-out, next to the embedded (in-process) select
// as the zero-overhead baseline. All clients share one store — the
// central-repository shape the service layer exists for — so higher
// fan-outs also exercise the worker pool and decoded-chunk cache under
// concurrent multi-tenant load.

// ServerResult is one configuration's measurement, serialized into
// BENCH_server.json by cmd/avbench.
type ServerResult struct {
	Name      string  `json:"name"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	NsPerOp   int64   `json:"ns_per_op"`
	ReqPerSec float64 `json:"req_per_sec"`
	MBPerSec  float64 `json:"mb_per_sec"`
	// SpeedupVsOneClient is this run's aggregate request throughput over
	// the single-remote-client run (1.0 for that run itself, 0 for the
	// embedded baseline row, which has no wire path).
	SpeedupVsOneClient float64 `json:"speedup_vs_one_client"`
}

// serverFanouts are the remote client counts measured.
var serverFanouts = []int{1, 2, 4, 8}

// Server runs the service-layer experiment: build a delta-chained dense
// array (the hotpath workload shape), serve it over HTTP, and sweep
// remote-select fan-outs over one shared server. parallelism and
// cacheBytes configure the served store (avbench's -parallelism /
// -cache-bytes flags, as in the hotpath experiment).
func Server(workDir string, sc Scale, parallelism int, cacheBytes int64) (Table, []ServerResult, error) {
	side := sc.NOAASide
	if side < 64 {
		side = 64
	}
	versions := HotPathSeries(side, sc.Seed)

	opts := core.DefaultOptions()
	opts.ChunkBytes = sc.ChunkBytes
	opts.Parallelism = parallelism
	opts.CacheBytes = cacheBytes
	store, err := core.Open(filepath.Join(workDir, "server-store"), opts)
	if err != nil {
		return Table{}, nil, err
	}
	defer store.Close()
	sch := array.Schema{
		Name:  "Chain",
		Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: side - 1}, {Name: "X", Lo: 0, Hi: side - 1}},
		Attrs: []array.Attribute{{Name: "V", Type: array.Int32}},
	}
	if err := store.CreateArray(sch); err != nil {
		return Table{}, nil, err
	}
	ids := make([]int, len(versions))
	for i, v := range versions {
		id, err := store.Insert("Chain", core.DensePayload(v))
		if err != nil {
			return Table{}, nil, err
		}
		ids[i] = id
	}

	srv, err := server.New(server.Config{
		Store:  store,
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		return Table{}, nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// fixed total work per run, split across clients, so aggregate
	// throughput across fan-outs is directly comparable
	totalRequests := 8 * len(ids)

	var results []ServerResult

	// embedded baseline: the same selects without the wire path
	embedded, err := runServerConfig("embedded", 1, totalRequests, ids, func(i int) (int64, error) {
		pl, err := store.Select("Chain", ids[i%len(ids)])
		if err != nil {
			return 0, err
		}
		return pl.Dense.SizeBytes(), nil
	})
	if err != nil {
		return Table{}, nil, err
	}
	results = append(results, embedded)

	var oneClient float64
	for _, fan := range serverFanouts {
		clients := make([]*client.Client, fan)
		for i := range clients {
			clients[i] = client.New(ts.URL)
		}
		r, err := runServerConfig(fmt.Sprintf("remote-%dc", fan), fan, totalRequests, ids, func(i int) (int64, error) {
			pl, err := clients[i%fan].Select("Chain", ids[i%len(ids)])
			if err != nil {
				return 0, err
			}
			return pl.Dense.SizeBytes(), nil
		})
		if err != nil {
			return Table{}, nil, err
		}
		if fan == 1 {
			oneClient = r.ReqPerSec
			r.SpeedupVsOneClient = 1
		} else if oneClient > 0 {
			r.SpeedupVsOneClient = r.ReqPerSec / oneClient
		}
		results = append(results, r)
	}

	t := Table{
		Title:   "Service layer — remote select throughput vs client fan-out",
		Columns: []string{"Config", "Clients", "Req", "ns/op", "req/s", "MB/s", "Speedup"},
	}
	for _, r := range results {
		speedup := "-"
		if r.SpeedupVsOneClient > 0 {
			speedup = fmt.Sprintf("%.1fx", r.SpeedupVsOneClient)
		}
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.Clients),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.NsPerOp),
			fmt.Sprintf("%.0f", r.ReqPerSec),
			fmt.Sprintf("%.0f", r.MBPerSec),
			speedup,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("full-version remote selects over a %d-version delta chain of %dx%d int32 cells (%s/response), one shared avstored server",
			len(ids), side, side, fmtBytes(versions[0].SizeBytes())))
	return t, results, nil
}

// runServerConfig fans totalRequests out over `clients` goroutines, each
// pulling request indices from a shared counter, and aggregates
// wall-clock throughput.
func runServerConfig(name string, clients, totalRequests int, ids []int, doReq func(i int) (int64, error)) (ServerResult, error) {
	var (
		next     atomic.Int64
		bytes    atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= totalRequests {
					return
				}
				n, err := doReq(i)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
				bytes.Add(n)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return ServerResult{}, firstErr
	}
	return ServerResult{
		Name:      name,
		Clients:   clients,
		Requests:  totalRequests,
		NsPerOp:   elapsed.Nanoseconds() / int64(totalRequests),
		ReqPerSec: float64(totalRequests) / elapsed.Seconds(),
		MBPerSec:  float64(bytes.Load()) / elapsed.Seconds() / (1 << 20),
	}, nil
}
