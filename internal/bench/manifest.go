package bench

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
)

// The manifest experiment measures the store-wide commit log against
// the legacy per-array commit protocol on the workload the log was
// built for: batches that span several arrays. The manifest store
// lands each K-array batch with Store.InsertMulti — one append, one
// fsync, atomic across members — while the baseline store (opened with
// Options.PerArrayCommit) pays K separate InsertBatch commits, each
// with its own versions.json rename and directory fsync, and offers no
// cross-array atomicity at all.

// ManifestResult is one mode's measurement, serialized into
// BENCH_manifest.json by cmd/avbench.
type ManifestResult struct {
	Mode         string  `json:"mode"` // "manifest" or "per-array"
	Arrays       int     `json:"arrays"`
	Batches      int     `json:"batches"`
	NsPerBatch   int64   `json:"ns_per_batch"`
	BatchesPerSec float64 `json:"batches_per_sec"`
	// MetaFsyncs counts the durable metadata-commit fsyncs the run paid
	// (manifest log fsyncs, or per-array rename+dir fsync commits).
	MetaFsyncs int64 `json:"meta_fsyncs"`
	// FsyncsPerBatch is MetaFsyncs/Batches: 1.0 for the manifest, K for
	// the per-array baseline.
	FsyncsPerBatch float64 `json:"fsyncs_per_batch"`
}

// ManifestSummary is the whole experiment plus the two headline
// numbers CI gates on.
type ManifestSummary struct {
	Results []ManifestResult `json:"results"`
	// ManifestFsyncsPerBatch repeats the manifest mode's FsyncsPerBatch
	// for the jq gate: one commit fsync per cross-array batch.
	ManifestFsyncsPerBatch float64 `json:"manifest_fsyncs_per_batch"`
	// Speedup is manifest batches/sec over the per-array baseline.
	Speedup float64 `json:"speedup"`
}

// Manifest runs the cross-array commit experiment and returns the
// rendered table plus the machine-readable summary.
func Manifest(workDir string, sc Scale, parallelism int) (Table, ManifestSummary, error) {
	const side = 32 // 4 KB int32 payloads: commit cost dominates encode
	const arrays = 4
	const trials = 3
	batches := 40
	if sc.NOAASide < 128 {
		batches = 24 // quick scale
	}

	summary := ManifestSummary{}
	run := 0
	for _, mode := range []string{"per-array", "manifest"} {
		var cell []ManifestResult
		for trial := 0; trial < trials; trial++ {
			run++
			dir := filepath.Join(workDir, fmt.Sprintf("manifest-%d", run))
			res, err := runManifestConfig(dir, mode, arrays, batches, side, parallelism)
			if err != nil {
				return Table{}, ManifestSummary{}, err
			}
			cell = append(cell, res)
		}
		sort.Slice(cell, func(a, b int) bool { return cell[a].BatchesPerSec < cell[b].BatchesPerSec })
		med := cell[len(cell)/2]
		summary.Results = append(summary.Results, med)
		if mode == "manifest" {
			summary.ManifestFsyncsPerBatch = med.FsyncsPerBatch
			if base := summary.Results[0].BatchesPerSec; base > 0 {
				summary.Speedup = med.BatchesPerSec / base
			}
		}
	}

	t := Table{
		Title:   "Cross-array batch ingest — manifest log vs per-array commit",
		Columns: []string{"Mode", "Arrays", "Batches", "ns/batch", "batches/s", "meta fsyncs", "fsyncs/batch"},
	}
	for _, r := range summary.Results {
		t.Rows = append(t.Rows, []string{
			r.Mode,
			fmt.Sprintf("%d", r.Arrays),
			fmt.Sprintf("%d", r.Batches),
			fmt.Sprintf("%d", r.NsPerBatch),
			fmt.Sprintf("%.0f", r.BatchesPerSec),
			fmt.Sprintf("%d", r.MetaFsyncs),
			fmt.Sprintf("%.2f", r.FsyncsPerBatch),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d durable batches, each spanning %d arrays with one %dx%d int32 version per member; every run read back byte-identical and verified",
			batches, arrays, side, side),
		fmt.Sprintf("manifest commit: %.2f metadata fsyncs per cross-array batch (per-array baseline: %.2f), %.1fx throughput",
			summary.ManifestFsyncsPerBatch, summary.Results[0].FsyncsPerBatch, summary.Speedup))
	return t, summary, nil
}

// runManifestConfig measures one mode on a fresh durable store and
// fails if any committed version does not read back byte-identical.
func runManifestConfig(dir, mode string, arrays, batches int, side int64, parallelism int) (ManifestResult, error) {
	opts := core.DefaultOptions()
	opts.Durability = true
	opts.Parallelism = parallelism
	opts.PerArrayCommit = mode == "per-array"
	// bulk-ingest shape, as in the ingest experiment: the run measures
	// the commit protocol, not chain decoding
	opts.AutoDelta = false
	store, err := core.Open(dir, opts)
	if err != nil {
		return ManifestResult{}, err
	}
	defer store.Close()
	names := make([]string, arrays)
	for i := range names {
		names[i] = fmt.Sprintf("M%d", i)
		sch := array.Schema{
			Name:  names[i],
			Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: side - 1}, {Name: "X", Lo: 0, Hi: side - 1}},
			Attrs: []array.Attribute{{Name: "V", Type: array.Int32}},
		}
		if err := store.CreateArray(sch); err != nil {
			return ManifestResult{}, err
		}
	}
	content := func(seed int) *array.Dense {
		d := array.MustDense(array.Int32, []int64{side, side})
		for i := int64(0); i < d.NumCells(); i++ {
			d.SetBits(i, int64(seed)*2654435761+i*31)
		}
		return d
	}

	// the creation commits above are not part of the measured batch
	// loop; snapshot the counters to isolate it
	before := store.Stats()
	written := map[string]map[int]int{} // array -> version id -> seed
	for _, n := range names {
		written[n] = map[int]int{}
	}
	start := time.Now()
	for b := 0; b < batches; b++ {
		if mode == "manifest" {
			multi := make([]core.MultiInsert, arrays)
			for i, n := range names {
				multi[i] = core.MultiInsert{Array: n, Payloads: []core.Payload{core.DensePayload(content(b*arrays + i))}}
			}
			out, err := store.InsertMulti(multi)
			if err != nil {
				return ManifestResult{}, err
			}
			for i, n := range names {
				written[n][out[n][0]] = b*arrays + i
			}
		} else {
			for i, n := range names {
				ids, err := store.InsertBatch(n, []core.Payload{core.DensePayload(content(b*arrays + i))})
				if err != nil {
					return ManifestResult{}, err
				}
				written[n][ids[0]] = b*arrays + i
			}
		}
	}
	elapsed := time.Since(start)

	// correctness: every acknowledged version reads back byte-identical
	for n, vers := range written {
		for id, seed := range vers {
			pl, err := store.Select(n, id)
			if err != nil {
				return ManifestResult{}, fmt.Errorf("manifest %s: %s@%d unreadable: %w", mode, n, id, err)
			}
			if !pl.Dense.Equal(content(seed)) {
				return ManifestResult{}, fmt.Errorf("manifest %s: %s@%d not byte-identical", mode, n, id)
			}
		}
		rep, err := store.Verify(n)
		if err != nil {
			return ManifestResult{}, err
		}
		if !rep.Ok() {
			return ManifestResult{}, fmt.Errorf("manifest %s: verify %s failed: %v", mode, n, rep.Problems)
		}
	}
	st := store.Stats()
	var metaFsyncs int64
	if mode == "manifest" {
		metaFsyncs = st.ManifestFsyncs - before.ManifestFsyncs
	} else {
		// the per-array protocol pays one versions.json rename commit per
		// InsertBatch call; each is one durable commit point, which
		// GroupCommits counts
		metaFsyncs = st.GroupCommits - before.GroupCommits
	}
	res := ManifestResult{
		Mode:          mode,
		Arrays:        arrays,
		Batches:       batches,
		NsPerBatch:    elapsed.Nanoseconds() / int64(batches),
		BatchesPerSec: float64(batches) / elapsed.Seconds(),
		MetaFsyncs:    metaFsyncs,
	}
	res.FsyncsPerBatch = float64(metaFsyncs) / float64(batches)
	return res, nil
}
