package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/chunk"
	"arrayvers/internal/compress"
	"arrayvers/internal/core"
	"arrayvers/internal/datasets"
	"arrayvers/internal/vcs"
)

// osmVariant describes one storage configuration of Tables III/IV.
type osmVariant struct {
	name string
	opts core.Options
}

func osmVariants(sc Scale) []osmVariant {
	base := core.DefaultOptions()
	base.ChunkBytes = sc.ChunkBytes
	cd := base
	cd.Codec = compress.None
	chunksOnly := base
	chunksOnly.AutoDelta = false
	cdlz := base
	cdlz.Codec = compress.LZ
	uncompressed := base
	uncompressed.AutoDelta = false
	uncompressed.ChunkBytes = sc.OSMSide * sc.OSMSide * 2 // one chunk = whole array
	return []osmVariant{
		{"Chunks + Deltas", cd},
		{"Chunks", chunksOnly},
		{"Chunks + Deltas + LZ", cdlz},
		{"Uncompressed", uncompressed},
	}
}

func osmSchema(sc Scale) array.Schema {
	return array.Schema{
		Name:  "OSM",
		Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: sc.OSMSide - 1}, {Name: "X", Lo: 0, Hi: sc.OSMSide - 1}},
		Attrs: []array.Attribute{{Name: "Pixel", Type: array.UInt8}},
	}
}

// buildOSMStore imports the OSM substitute under one variant and returns
// the store plus the import duration.
func buildOSMStore(dir string, sc Scale, v osmVariant, tiles []*array.Dense) (*core.Store, time.Duration, error) {
	s, err := core.Open(dir, v.opts)
	if err != nil {
		return nil, 0, err
	}
	if err := s.CreateArray(osmSchema(sc)); err != nil {
		return nil, 0, err
	}
	d, err := timed(func() error {
		for _, tile := range tiles {
			if _, err := s.Insert("OSM", core.DensePayload(tile)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return s, d, nil
}

// subselectBox returns a region covering exactly one chunk of the
// chunked variants (the paper's subselect reads "only one chunk,
// approximately 10MB uncompressed").
func subselectBox(sc Scale) array.Box {
	ck, err := chunk.New([]int64{sc.OSMSide, sc.OSMSide}, 1, sc.ChunkBytes)
	if err != nil {
		// unreachable with sane scales; fall back to one cell
		return array.NewBox([]int64{0, 0}, []int64{1, 1})
	}
	// the chunk containing the array center
	origin := ck.ChunkOf([]int64{sc.OSMSide / 2, sc.OSMSide / 2})
	return ck.Box(origin)
}

// Table3And4 — E3/E4: OSM snapshot queries (Table III) and 16-version
// range queries (Table IV), reporting bytes read from disk and wall time
// per storage variant.
func Table3And4(workDir string, sc Scale) (Table, Table, error) {
	tiles := datasets.OSM(datasets.OSMConfig{Side: sc.OSMSide, Versions: sc.OSMVersions, Seed: sc.Seed})
	t3 := Table{
		Title:   "Table III — OSM substitute, snapshot query (latest version)",
		Columns: []string{"Method", "Select Bytes Read", "Select Time", "Subselect Bytes Read", "Subselect Time"},
	}
	t4 := Table{
		Title:   fmt.Sprintf("Table IV — OSM substitute, range query (%d versions)", sc.OSMVersions),
		Columns: []string{"Method", "Select Bytes Read", "Select Time", "Subselect Bytes Read", "Subselect Time"},
	}
	sub := subselectBox(sc)
	head := sc.OSMVersions
	all := make([]int, sc.OSMVersions)
	for i := range all {
		all[i] = i + 1
	}
	for _, v := range osmVariants(sc) {
		dir := filepath.Join(workDir, "osm-"+sanitizeName(v.name))
		s, _, err := buildOSMStore(dir, sc, v, tiles)
		if err != nil {
			return Table{}, Table{}, fmt.Errorf("%s: %w", v.name, err)
		}
		// Table III: snapshot
		s.ResetStats()
		selTime, err := timed(func() error {
			_, err := s.Select("OSM", head)
			return err
		})
		if err != nil {
			return Table{}, Table{}, err
		}
		selRead := s.Stats().BytesRead
		s.ResetStats()
		subTime, err := timed(func() error {
			_, err := s.SelectRegion("OSM", head, sub)
			return err
		})
		if err != nil {
			return Table{}, Table{}, err
		}
		subRead := s.Stats().BytesRead
		t3.Rows = append(t3.Rows, []string{v.name, fmtBytes(selRead), fmtDur(selTime), fmtBytes(subRead), fmtDur(subTime)})

		// Table IV: 16-version range
		s.ResetStats()
		rangeTime, err := timed(func() error {
			_, err := s.SelectMulti("OSM", all)
			return err
		})
		if err != nil {
			return Table{}, Table{}, err
		}
		rangeRead := s.Stats().BytesRead
		s.ResetStats()
		rangeSubTime, err := timed(func() error {
			_, err := s.SelectMultiRegion("OSM", all, sub)
			return err
		})
		if err != nil {
			return Table{}, Table{}, err
		}
		rangeSubRead := s.Stats().BytesRead
		t4.Rows = append(t4.Rows, []string{v.name, fmtBytes(rangeRead), fmtDur(rangeTime), fmtBytes(rangeSubRead), fmtDur(rangeSubTime)})
		os.RemoveAll(dir)
	}
	return t3, t4, nil
}

// Table6 — E6: SVN and Git performance on the OSM substitute, compared
// to our uncompressed and Hybrid+LZ configurations.
func Table6(workDir string, sc Scale) (Table, error) {
	tiles := datasets.OSM(datasets.OSMConfig{Side: sc.OSMSide, Versions: sc.OSMVersions, Seed: sc.Seed})
	t := Table{
		Title:   "Table VI — SVN and Git vs ours on the OSM substitute",
		Columns: []string{"Method", "Import Time", "Data Size", "Array Select", "Subselect"},
	}
	sub := subselectBox(sc)
	head := sc.OSMVersions

	// ours: Uncompressed and Hybrid+LZ variants
	for _, v := range []osmVariant{osmVariants(sc)[3], osmVariants(sc)[2]} {
		name := map[string]string{"Uncompressed": "Uncompressed", "Chunks + Deltas + LZ": "Hybrid+LZ"}[v.name]
		dir := filepath.Join(workDir, "t6-"+sanitizeName(v.name))
		s, importTime, err := buildOSMStore(dir, sc, v, tiles)
		if err != nil {
			return Table{}, err
		}
		info, err := s.Info("OSM")
		if err != nil {
			return Table{}, err
		}
		selTime, err := timed(func() error { _, err := s.Select("OSM", head); return err })
		if err != nil {
			return Table{}, err
		}
		subTime, err := timed(func() error { _, err := s.SelectRegion("OSM", head, sub); return err })
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{name, fmtDur(importTime), fmtBytes(info.DiskBytes), fmtDur(selTime), fmtDur(subTime)})
		os.RemoveAll(dir)
	}

	// SVN-like: tiles exceed the binary deltification cap, so the repo
	// stores fulltexts (the paper: SVN stored the full 16 GB)
	svnDir := filepath.Join(workDir, "t6-svn")
	svn, err := vcs.NewSVN(svnDir, vcs.SVNOptions{MaxDeltaBytes: sc.OSMSide * sc.OSMSide / 2})
	if err != nil {
		return Table{}, err
	}
	svnImport, err := timed(func() error {
		for _, tile := range tiles {
			if _, err := svn.Commit("osm.dat", array.MarshalDense(tile)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	svnSize, err := svn.DiskBytes()
	if err != nil {
		return Table{}, err
	}
	var checkout *array.Dense
	svnSel, err := timed(func() error {
		raw, err := svn.Checkout("osm.dat", sc.OSMVersions-1)
		if err != nil {
			return err
		}
		checkout, err = array.UnmarshalDense(raw)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	// SVN has no partial reads: a subselect checks out the whole file and
	// slices it
	svnSub, err := timed(func() error {
		raw, err := svn.Checkout("osm.dat", sc.OSMVersions-1)
		if err != nil {
			return err
		}
		arr, err := array.UnmarshalDense(raw)
		if err != nil {
			return err
		}
		_, err = arr.Slice(sub)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	_ = checkout
	t.Rows = append(t.Rows, []string{"SVN-like", fmtDur(svnImport), fmtBytes(svnSize), fmtDur(svnSel), fmtDur(svnSub)})
	os.RemoveAll(svnDir)

	// Git-like: the tiles exceed the memory budget (the paper: "Git ran
	// out of memory on our test machine")
	gitDir := filepath.Join(workDir, "t6-git")
	git, err := vcs.NewGit(gitDir, vcs.GitOptions{MemoryBudget: sc.GitMemoryBudget})
	if err != nil {
		return Table{}, err
	}
	_, gitErr := git.Commit("osm.dat", array.MarshalDense(tiles[0]))
	if gitErr == vcs.ErrOutOfMemory {
		t.Rows = append(t.Rows, []string{"Git-like", "—", "—", "—", "— (out of memory)"})
	} else if gitErr != nil {
		return Table{}, gitErr
	} else {
		t.Notes = append(t.Notes, "Git-like import unexpectedly fit in the memory budget at this scale")
	}
	os.RemoveAll(gitDir)
	return t, nil
}

func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		}
	}
	return string(out)
}
