package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
	"arrayvers/internal/trace"
)

// The tracing experiment bounds the cost of the observability layer on
// the hot select path: the always-on stage histograms plus a full
// per-request trace attached to every operation. It reuses the hotpath
// workload (stacked SelectMulti over a delta chain, warm cache) and
// interleaves untraced and traced measurement rounds over the same
// store, so clock drift and cache state cancel out of the comparison.
// CI gates on OverheadPct staying under 5%.

// TracingResult is the experiment's measurement, serialized into
// BENCH_tracing.json by cmd/avbench.
type TracingResult struct {
	Versions      int     `json:"versions"`
	Iters         int     `json:"iters"`
	PlainNsPerOp  int64   `json:"plain_ns_per_op"`
	TracedNsPerOp int64   `json:"traced_ns_per_op"`
	OverheadPct   float64 `json:"overhead_pct"`
	// Stages are the pipeline stages the traced run actually recorded —
	// an empty list would mean the trace never reached the store and the
	// overhead number is measuring nothing.
	Stages []string `json:"stages"`
}

// Tracing runs the instrumentation-overhead experiment with the tuned
// hot-path configuration (worker pool + decoded-chunk cache).
func Tracing(workDir string, sc Scale, parallelism int, cacheBytes int64) (Table, TracingResult, error) {
	side := sc.NOAASide
	if side < 64 {
		side = 64
	}
	versions := HotPathSeries(side, sc.Seed)

	dir := filepath.Join(workDir, "tracing")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Table{}, TracingResult{}, err
	}
	opts := core.DefaultOptions()
	opts.ChunkBytes = hotPathChunkBytes
	opts.Parallelism = parallelism
	opts.CacheBytes = cacheBytes
	s, err := core.Open(dir, opts)
	if err != nil {
		return Table{}, TracingResult{}, err
	}
	defer s.Close()
	sch := array.Schema{
		Name:  "Chain",
		Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: side - 1}, {Name: "X", Lo: 0, Hi: side - 1}},
		Attrs: []array.Attribute{{Name: "V", Type: array.Int32}},
	}
	if err := s.CreateArray(sch); err != nil {
		return Table{}, TracingResult{}, err
	}
	ids := make([]int, len(versions))
	for i, v := range versions {
		id, err := s.Insert("Chain", core.DensePayload(v))
		if err != nil {
			return Table{}, TracingResult{}, err
		}
		ids[i] = id
	}

	// warm the decoded-chunk cache so both sides measure the same
	// steady-state path
	for i := 0; i < 2; i++ {
		if _, err := s.SelectMulti("Chain", ids); err != nil {
			return Table{}, TracingResult{}, err
		}
	}

	// interleaved A/B rounds; a fresh trace per traced op matches how
	// the server traces requests. Enough iterations that the sub-percent
	// effect being gated is not drowned by scheduler noise.
	const rounds, perRound = 10, 10
	var plainTotal, tracedTotal time.Duration
	var lastSum trace.Summary
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		for i := 0; i < perRound; i++ {
			if _, err := s.SelectMultiRegionCtx(context.Background(), "Chain", ids, array.Box{}); err != nil {
				return Table{}, TracingResult{}, err
			}
		}
		plainTotal += time.Since(t0)

		t0 = time.Now()
		for i := 0; i < perRound; i++ {
			tr := trace.New("bench-tracing")
			ctx := trace.NewContext(context.Background(), tr)
			if _, err := s.SelectMultiRegionCtx(ctx, "Chain", ids, array.Box{}); err != nil {
				return Table{}, TracingResult{}, err
			}
			lastSum = tr.Finish()
		}
		tracedTotal += time.Since(t0)
	}

	iters := rounds * perRound
	res := TracingResult{
		Versions:      len(versions),
		Iters:         iters,
		PlainNsPerOp:  plainTotal.Nanoseconds() / int64(iters),
		TracedNsPerOp: tracedTotal.Nanoseconds() / int64(iters),
	}
	if res.PlainNsPerOp > 0 {
		res.OverheadPct = 100 * float64(res.TracedNsPerOp-res.PlainNsPerOp) / float64(res.PlainNsPerOp)
	}
	res.Stages = make([]string, 0, len(lastSum.Stages))
	for _, st := range lastSum.Stages {
		res.Stages = append(res.Stages, st.Stage)
	}
	if len(res.Stages) == 0 {
		return Table{}, res, fmt.Errorf("bench: traced run recorded no pipeline stages")
	}

	t := Table{
		Title:   "Tracing — instrumentation overhead on the warm select hot path",
		Columns: []string{"Config", "Warm sel./op", "Overhead"},
		Rows: [][]string{
			{"untraced", fmtDur(time.Duration(res.PlainNsPerOp)), "-"},
			{"traced", fmtDur(time.Duration(res.TracedNsPerOp)), fmt.Sprintf("%.2f%%", res.OverheadPct)},
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("SelectMulti over a %d-version delta chain of %dx%d int32 cells, warm cache, fresh trace per traced op",
			len(versions), side, side),
		fmt.Sprintf("stages recorded: %v", res.Stages))
	return t, res, nil
}
