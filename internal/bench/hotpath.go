package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
)

// The hot-path experiment measures the select/insert fast paths this
// repo adds on top of the paper: the bounded worker pool and the
// store-wide decoded-chunk cache. It stacks a long delta chain with
// SelectMulti — the paper's worst case (Fig. 2: "a chain of versions
// must be accessed") — under a serial/uncached baseline and a
// parallel/cached configuration, and reports machine-readable numbers so
// the perf trajectory is trackable across PRs.

// HotPathResult is one configuration's measurement, serialized into
// BENCH_hotpath.json by cmd/avbench.
type HotPathResult struct {
	Name          string  `json:"name"`
	Versions      int     `json:"versions"`
	ChainChunks   int64   `json:"chain_chunks"`
	Parallelism   int     `json:"parallelism"`
	CacheBytes    int64   `json:"cache_bytes"`
	InsertNsPerOp int64   `json:"insert_ns_per_op"`
	ColdNsPerOp   int64   `json:"cold_select_ns_per_op"`
	WarmNsPerOp   int64   `json:"warm_select_ns_per_op"`
	WarmMBPerSec  float64 `json:"warm_mb_per_sec"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	// Speedup is this configuration's warm SelectMulti throughput over
	// the serial/uncached baseline (1.0 for the baseline itself).
	Speedup float64 `json:"speedup_vs_baseline"`
}

// HotPathVersions is the delta-chain length: every version after the
// first is stored as a delta off its predecessor, so a stacked select of
// all versions exercises the full chain walk.
const HotPathVersions = 24

// hotPathChunkBytes keeps several chunks per version at bench scale so
// the worker pool has per-chunk work to fan out.
const hotPathChunkBytes = 32 << 10

// HotPath runs the hot-path experiment. parallelism and cacheBytes
// configure the tuned run; the baseline always runs with parallelism 1
// and the cache disabled (the seed behavior).
func HotPath(workDir string, sc Scale, parallelism int, cacheBytes int64) (Table, []HotPathResult, error) {
	side := sc.NOAASide
	if side < 64 {
		side = 64
	}
	versions := HotPathSeries(side, sc.Seed)

	baseline, err := hotPathConfig(filepath.Join(workDir, "hotpath-serial"), "serial-nocache", versions, 1, 0)
	if err != nil {
		return Table{}, nil, err
	}
	baseline.Speedup = 1
	tuned, err := hotPathConfig(filepath.Join(workDir, "hotpath-tuned"), "parallel-cached", versions, parallelism, cacheBytes)
	if err != nil {
		return Table{}, nil, err
	}
	if tuned.WarmNsPerOp > 0 {
		tuned.Speedup = float64(baseline.WarmNsPerOp) / float64(tuned.WarmNsPerOp)
	}
	results := []HotPathResult{baseline, tuned}

	t := Table{
		Title:   "Hot path — parallel chunk pipeline + decoded-chunk cache",
		Columns: []string{"Config", "Par.", "Cache", "Insert/op", "Cold sel.", "Warm sel.", "MB/s", "Hit rate", "Speedup"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.Parallelism),
			fmtBytes(r.CacheBytes),
			fmtDur(time.Duration(r.InsertNsPerOp)),
			fmtDur(time.Duration(r.ColdNsPerOp)),
			fmtDur(time.Duration(r.WarmNsPerOp)),
			fmt.Sprintf("%.0f", r.WarmMBPerSec),
			fmt.Sprintf("%.2f", r.CacheHitRate),
			fmt.Sprintf("%.1fx", r.Speedup),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("SelectMulti over a %d-version delta chain of %dx%d int32 cells, %s chunks",
			HotPathVersions, side, side, fmtBytes(hotPathChunkBytes)))
	return t, results, nil
}

// HotPathSeries builds the hot-path workload: a smoothly evolving dense
// series of HotPathVersions versions, the shape that makes every version
// delta off its predecessor. Exported so the root-level
// BenchmarkSelectMultiChain* benchmarks measure the exact same workload
// as the avbench hotpath experiment.
func HotPathSeries(side, seed int64) []*array.Dense {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*array.Dense, HotPathVersions)
	cur := array.MustDense(array.Int32, []int64{side, side})
	for i := int64(0); i < cur.NumCells(); i++ {
		cur.SetBits(i, int64(rng.Intn(1000)))
	}
	for v := range out {
		out[v] = cur.Clone()
		for i := int64(0); i < cur.NumCells(); i++ {
			if rng.Float64() < 0.05 {
				cur.SetBits(i, cur.Bits(i)+int64(rng.Intn(5)-2))
			}
		}
	}
	return out
}

func hotPathConfig(dir, name string, versions []*array.Dense, parallelism int, cacheBytes int64) (HotPathResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return HotPathResult{}, err
	}
	opts := core.DefaultOptions()
	opts.ChunkBytes = hotPathChunkBytes
	opts.Parallelism = parallelism
	opts.CacheBytes = cacheBytes
	s, err := core.Open(dir, opts)
	if err != nil {
		return HotPathResult{}, err
	}
	side := versions[0].Shape()[0]
	sch := array.Schema{
		Name:  "Chain",
		Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: side - 1}, {Name: "X", Lo: 0, Hi: side - 1}},
		Attrs: []array.Attribute{{Name: "V", Type: array.Int32}},
	}
	if err := s.CreateArray(sch); err != nil {
		return HotPathResult{}, err
	}
	ids := make([]int, len(versions))
	insertTime, err := timed(func() error {
		for i, v := range versions {
			id, err := s.Insert("Chain", core.DensePayload(v))
			if err != nil {
				return err
			}
			ids[i] = id
		}
		return nil
	})
	if err != nil {
		return HotPathResult{}, err
	}

	res := HotPathResult{
		Name:          name,
		Versions:      len(versions),
		Parallelism:   s.Options().Parallelism, // effective (0 fills to GOMAXPROCS)
		CacheBytes:    cacheBytes,
		InsertNsPerOp: insertTime.Nanoseconds() / int64(len(versions)),
	}
	info, err := s.Info("Chain")
	if err != nil {
		return HotPathResult{}, err
	}
	res.ChainChunks = info.NumChunks

	// reopen the store so the cold select really is cold: the inserts
	// above warm the decoded-chunk cache while sizing delta candidates
	s, err = core.Open(dir, opts)
	if err != nil {
		return HotPathResult{}, err
	}
	coldTime, err := timed(func() error {
		_, err := s.SelectMulti("Chain", ids)
		return err
	})
	if err != nil {
		return HotPathResult{}, err
	}
	res.ColdNsPerOp = coldTime.Nanoseconds()

	const iters = 5
	s.ResetStats()
	var stacked int64
	warmTime, err := timed(func() error {
		for i := 0; i < iters; i++ {
			d, err := s.SelectMulti("Chain", ids)
			if err != nil {
				return err
			}
			stacked = d.SizeBytes()
		}
		return nil
	})
	if err != nil {
		return HotPathResult{}, err
	}
	res.WarmNsPerOp = warmTime.Nanoseconds() / iters
	res.WarmMBPerSec = float64(stacked) * iters / warmTime.Seconds() / (1 << 20)
	stats := s.Stats()
	if lookups := stats.CacheHits + stats.CacheMisses; lookups > 0 {
		res.CacheHitRate = float64(stats.CacheHits) / float64(lookups)
	}
	return res, nil
}
