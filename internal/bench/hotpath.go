package bench

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/bitpack"
	"arrayvers/internal/core"
	"arrayvers/internal/delta"
)

// The hot-path experiment measures the select/insert fast paths this
// repo adds on top of the paper: the bounded worker pool and the
// store-wide decoded-chunk cache. It stacks a long delta chain with
// SelectMulti — the paper's worst case (Fig. 2: "a chain of versions
// must be accessed") — under a serial/uncached baseline and a
// parallel/cached configuration, and reports machine-readable numbers so
// the perf trajectory is trackable across PRs.

// HotPathResult is one configuration's measurement, serialized into
// BENCH_hotpath.json by cmd/avbench.
type HotPathResult struct {
	Name          string  `json:"name"`
	Versions      int     `json:"versions"`
	ChainChunks   int64   `json:"chain_chunks"`
	Parallelism   int     `json:"parallelism"`
	CacheBytes    int64   `json:"cache_bytes"`
	InsertNsPerOp int64   `json:"insert_ns_per_op"`
	ColdNsPerOp   int64   `json:"cold_select_ns_per_op"`
	WarmNsPerOp   int64   `json:"warm_select_ns_per_op"`
	WarmMBPerSec  float64 `json:"warm_mb_per_sec"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	// Speedup is this configuration's warm SelectMulti throughput over
	// the serial/uncached baseline (1.0 for the baseline itself).
	Speedup float64 `json:"speedup_vs_baseline"`
}

// HotPathReport is the whole machine-readable hotpath result: the
// serial-vs-tuned configurations plus the kernel microbench and the
// zero-copy (mmap) select-latency comparison. CI gates on KernelSpeedup
// and on the mmap p99 not regressing the read()+copy baseline.
type HotPathReport struct {
	Configs []HotPathResult `json:"configs"`

	// Kernel microbench: one chunk's worth of signed codes unpacked by
	// the scalar reference and the batched kernel.
	KernelVariant      string  `json:"kernel_variant"`
	DeltaKernelVariant string  `json:"delta_kernel_variant"`
	KernelScalarNs     int64   `json:"kernel_scalar_ns_per_chunk"`
	KernelBatchedNs    int64   `json:"kernel_batched_ns_per_chunk"`
	KernelSpeedup      float64 `json:"kernel_speedup"`

	// Zero-copy read path: interleaved uncached single-version selects
	// over the same on-disk chain, through an mmap-backed store and a
	// read()+copy store. MmapEnabled records whether the mapped store
	// actually served reads from mappings (false on platforms without
	// mmap support, where the two columns measure the same path).
	MmapEnabled      bool  `json:"mmap_enabled"`
	MmapSelectP99Ns  int64 `json:"mmap_select_p99_ns"`
	PlainSelectP99Ns int64 `json:"plain_select_p99_ns"`
}

// HotPathVersions is the delta-chain length: every version after the
// first is stored as a delta off its predecessor, so a stacked select of
// all versions exercises the full chain walk.
const HotPathVersions = 24

// hotPathChunkBytes keeps several chunks per version at bench scale so
// the worker pool has per-chunk work to fan out.
const hotPathChunkBytes = 32 << 10

// HotPath runs the hot-path experiment. parallelism and cacheBytes
// configure the tuned run; the baseline always runs with parallelism 1
// and the cache disabled (the seed behavior).
func HotPath(workDir string, sc Scale, parallelism int, cacheBytes int64) (Table, HotPathReport, error) {
	side := sc.NOAASide
	if side < 64 {
		side = 64
	}
	versions := HotPathSeries(side, sc.Seed)

	baseline, err := hotPathConfig(filepath.Join(workDir, "hotpath-serial"), "serial-nocache", versions, 1, 0)
	if err != nil {
		return Table{}, HotPathReport{}, err
	}
	baseline.Speedup = 1
	tuned, err := hotPathConfig(filepath.Join(workDir, "hotpath-tuned"), "parallel-cached", versions, parallelism, cacheBytes)
	if err != nil {
		return Table{}, HotPathReport{}, err
	}
	if tuned.WarmNsPerOp > 0 {
		tuned.Speedup = float64(baseline.WarmNsPerOp) / float64(tuned.WarmNsPerOp)
	}
	report := HotPathReport{
		Configs:            []HotPathResult{baseline, tuned},
		KernelVariant:      bitpack.ActiveKernel().String(),
		DeltaKernelVariant: delta.ActiveKernel().String(),
	}
	report.KernelScalarNs, report.KernelBatchedNs, err = kernelMicrobench()
	if err != nil {
		return Table{}, HotPathReport{}, err
	}
	if report.KernelBatchedNs > 0 {
		report.KernelSpeedup = float64(report.KernelScalarNs) / float64(report.KernelBatchedNs)
	}
	report.MmapSelectP99Ns, report.PlainSelectP99Ns, report.MmapEnabled, err =
		zeroCopySelectLatency(filepath.Join(workDir, "hotpath-zerocopy"), versions)
	if err != nil {
		return Table{}, HotPathReport{}, err
	}
	results := report.Configs

	t := Table{
		Title:   "Hot path — parallel chunk pipeline + decoded-chunk cache",
		Columns: []string{"Config", "Par.", "Cache", "Insert/op", "Cold sel.", "Warm sel.", "MB/s", "Hit rate", "Speedup"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.Parallelism),
			fmtBytes(r.CacheBytes),
			fmtDur(time.Duration(r.InsertNsPerOp)),
			fmtDur(time.Duration(r.ColdNsPerOp)),
			fmtDur(time.Duration(r.WarmNsPerOp)),
			fmt.Sprintf("%.0f", r.WarmMBPerSec),
			fmt.Sprintf("%.2f", r.CacheHitRate),
			fmt.Sprintf("%.1fx", r.Speedup),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("SelectMulti over a %d-version delta chain of %dx%d int32 cells, %s chunks",
			HotPathVersions, side, side, fmtBytes(hotPathChunkBytes)),
		fmt.Sprintf("unpack kernel (%s): single-chunk decode %s batched vs %s scalar (%.1fx)",
			report.KernelVariant, fmtDur(time.Duration(report.KernelBatchedNs)),
			fmtDur(time.Duration(report.KernelScalarNs)), report.KernelSpeedup),
		fmt.Sprintf("uncached select p99: %s mmap vs %s read()+copy (mmap enabled: %v)",
			fmtDur(time.Duration(report.MmapSelectP99Ns)),
			fmtDur(time.Duration(report.PlainSelectP99Ns)), report.MmapEnabled))
	return t, report, nil
}

// kernelMicrobench times one chunk's worth of signed codes (the shape a
// delta plane stores) through the scalar reference kernel and the
// batched kernel. Best-of-rounds sheds scheduler noise; CI gates on
// batched holding a >=2x advantage.
func kernelMicrobench() (scalarNs, batchedNs int64, err error) {
	const n = hotPathChunkBytes / 4 // int32 cells per chunk
	rng := rand.New(rand.NewSource(5))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(1<<10)) - 1<<9
	}
	width := bitpack.MaxSignedWidth(vals)
	buf := bitpack.PackSigned(vals, width)
	out := make([]int64, n)
	measure := func(k bitpack.Kernel) (int64, error) {
		prev := bitpack.SetKernel(k)
		defer bitpack.SetKernel(prev)
		const rounds, iters = 5, 8
		best := int64(math.MaxInt64)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for it := 0; it < iters; it++ {
				if err := bitpack.UnpackSignedInto(buf, n, width, out); err != nil {
					return 0, err
				}
			}
			if ns := time.Since(start).Nanoseconds() / iters; ns < best {
				best = ns
			}
		}
		return best, nil
	}
	if scalarNs, err = measure(bitpack.KernelScalar); err != nil {
		return 0, 0, err
	}
	if batchedNs, err = measure(bitpack.KernelBatched); err != nil {
		return 0, 0, err
	}
	return scalarNs, batchedNs, nil
}

// zeroCopySelectLatency builds one on-disk chain and selects single
// versions through two uncached stores over it — mapping enabled and
// disabled — strictly interleaved so page-cache state and machine noise
// land on both sides. Returns each side's p99 select latency.
func zeroCopySelectLatency(dir string, versions []*array.Dense) (mmapP99, plainP99 int64, mmapOn bool, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, 0, false, err
	}
	opts := core.DefaultOptions()
	opts.ChunkBytes = hotPathChunkBytes
	opts.CacheBytes = 0 // every select pays the read path
	build, err := core.Open(dir, opts)
	if err != nil {
		return 0, 0, false, err
	}
	side := versions[0].Shape()[0]
	sch := array.Schema{
		Name:  "Chain",
		Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: side - 1}, {Name: "X", Lo: 0, Hi: side - 1}},
		Attrs: []array.Attribute{{Name: "V", Type: array.Int32}},
	}
	if err := build.CreateArray(sch); err != nil {
		return 0, 0, false, err
	}
	ids := make([]int, len(versions))
	for i, v := range versions {
		if ids[i], err = build.Insert("Chain", core.DensePayload(v)); err != nil {
			return 0, 0, false, err
		}
	}
	if err := build.Close(); err != nil {
		return 0, 0, false, err
	}
	mm, err := core.Open(dir, opts)
	if err != nil {
		return 0, 0, false, err
	}
	defer mm.Close()
	plainOpts := opts
	plainOpts.DisableMmap = true
	pl, err := core.Open(dir, plainOpts)
	if err != nil {
		return 0, 0, false, err
	}
	defer pl.Close()

	const rounds = 8
	mmNs := make([]int64, 0, rounds*len(ids))
	plNs := make([]int64, 0, rounds*len(ids))
	sel := func(s *core.Store, sink *[]int64, id int) error {
		start := time.Now()
		_, err := s.Select("Chain", id)
		*sink = append(*sink, time.Since(start).Nanoseconds())
		return err
	}
	for r := 0; r < rounds; r++ {
		for _, id := range ids {
			// alternate which store goes first so warm-up effects cancel
			first, second := mm, pl
			fNs, sNs := &mmNs, &plNs
			if (r+id)%2 == 1 {
				first, second, fNs, sNs = pl, mm, &plNs, &mmNs
			}
			if err := sel(first, fNs, id); err != nil {
				return 0, 0, false, err
			}
			if err := sel(second, sNs, id); err != nil {
				return 0, 0, false, err
			}
		}
	}
	return p99(mmNs), p99(plNs), mm.Stats().MmapReads > 0, nil
}

// p99 returns the 99th-percentile sample (ceil rank).
func p99(ns []int64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	idx := (len(ns)*99 + 99) / 100
	if idx > len(ns) {
		idx = len(ns)
	}
	return ns[idx-1]
}

// HotPathSeries builds the hot-path workload: a smoothly evolving dense
// series of HotPathVersions versions, the shape that makes every version
// delta off its predecessor. Exported so the root-level
// BenchmarkSelectMultiChain* benchmarks measure the exact same workload
// as the avbench hotpath experiment.
func HotPathSeries(side, seed int64) []*array.Dense {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*array.Dense, HotPathVersions)
	cur := array.MustDense(array.Int32, []int64{side, side})
	for i := int64(0); i < cur.NumCells(); i++ {
		cur.SetBits(i, int64(rng.Intn(1000)))
	}
	for v := range out {
		out[v] = cur.Clone()
		for i := int64(0); i < cur.NumCells(); i++ {
			if rng.Float64() < 0.05 {
				cur.SetBits(i, cur.Bits(i)+int64(rng.Intn(5)-2))
			}
		}
	}
	return out
}

func hotPathConfig(dir, name string, versions []*array.Dense, parallelism int, cacheBytes int64) (HotPathResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return HotPathResult{}, err
	}
	opts := core.DefaultOptions()
	opts.ChunkBytes = hotPathChunkBytes
	opts.Parallelism = parallelism
	opts.CacheBytes = cacheBytes
	s, err := core.Open(dir, opts)
	if err != nil {
		return HotPathResult{}, err
	}
	side := versions[0].Shape()[0]
	sch := array.Schema{
		Name:  "Chain",
		Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: side - 1}, {Name: "X", Lo: 0, Hi: side - 1}},
		Attrs: []array.Attribute{{Name: "V", Type: array.Int32}},
	}
	if err := s.CreateArray(sch); err != nil {
		return HotPathResult{}, err
	}
	ids := make([]int, len(versions))
	insertTime, err := timed(func() error {
		for i, v := range versions {
			id, err := s.Insert("Chain", core.DensePayload(v))
			if err != nil {
				return err
			}
			ids[i] = id
		}
		return nil
	})
	if err != nil {
		return HotPathResult{}, err
	}

	res := HotPathResult{
		Name:          name,
		Versions:      len(versions),
		Parallelism:   s.Options().Parallelism, // effective (0 fills to GOMAXPROCS)
		CacheBytes:    cacheBytes,
		InsertNsPerOp: insertTime.Nanoseconds() / int64(len(versions)),
	}
	info, err := s.Info("Chain")
	if err != nil {
		return HotPathResult{}, err
	}
	res.ChainChunks = info.NumChunks

	// reopen the store so the cold select really is cold: the inserts
	// above warm the decoded-chunk cache while sizing delta candidates
	s, err = core.Open(dir, opts)
	if err != nil {
		return HotPathResult{}, err
	}
	coldTime, err := timed(func() error {
		_, err := s.SelectMulti("Chain", ids)
		return err
	})
	if err != nil {
		return HotPathResult{}, err
	}
	res.ColdNsPerOp = coldTime.Nanoseconds()

	const iters = 5
	s.ResetStats()
	var stacked int64
	warmTime, err := timed(func() error {
		for i := 0; i < iters; i++ {
			d, err := s.SelectMulti("Chain", ids)
			if err != nil {
				return err
			}
			stacked = d.SizeBytes()
		}
		return nil
	})
	if err != nil {
		return HotPathResult{}, err
	}
	res.WarmNsPerOp = warmTime.Nanoseconds() / iters
	res.WarmMBPerSec = float64(stacked) * iters / warmTime.Seconds() / (1 << 20)
	stats := s.Stats()
	if lookups := stats.CacheHits + stats.CacheMisses; lookups > 0 {
		res.CacheHitRate = float64(stats.CacheHits) / float64(lookups)
	}
	return res, nil
}
