// Package bench regenerates every quantitative table and experiment of
// the paper's evaluation section (§V) on the synthetic dataset
// substitutes, at laptop scale. Each runner returns a Table whose rows
// mirror the paper's; EXPERIMENTS.md records the paper's numbers next to
// ours. Experiment ids (E1–E10) follow DESIGN.md's index.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is one formatted experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries free-form observations printed under the table.
	Notes []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale holds the size knobs for every experiment. The paper ran at
// GB scale on real data; defaults here are laptop scale with the same
// shape (see EXPERIMENTS.md for the mapping).
type Scale struct {
	// E1/E2/E5/E7/E10: NOAA substitute
	NOAASide     int64
	NOAAVersions int
	NOAAAttrs    int
	// E3/E4/E6: OSM substitute
	OSMSide     int64
	OSMVersions int
	// E5: ConceptNet substitute
	CNetDim      int64
	CNetNNZ      int
	CNetVersions int
	// E8: Panorama and synthetic periodic data
	PanoSide         int64
	PanoVersions     int
	PanoScenes       int
	PeriodicVersions int
	PeriodicBytes    int64
	// shared
	ChunkBytes  int64
	BlockRadius int // MPEG-2-like search radius (paper: 16)
	// Git baseline memory budget (paper machine: 8 GB vs 1 GB tiles)
	GitMemoryBudget int64
	Seed            int64
}

// DefaultScale is the full laptop-scale configuration used by cmd/avbench.
func DefaultScale() Scale {
	return Scale{
		NOAASide: 192, NOAAVersions: 10, NOAAAttrs: 9,
		OSMSide: 2048, OSMVersions: 16,
		CNetDim: 1_000_000, CNetNNZ: 60_000, CNetVersions: 8,
		PanoSide: 192, PanoVersions: 24, PanoScenes: 4,
		PeriodicVersions: 40, PeriodicBytes: 256 << 10,
		ChunkBytes:  256 << 10,
		BlockRadius: 8,
		// 4 MB budget vs 4 MB tiles (2x commit working set) reproduces the
		// paper's 8 GB-machine / 1 GB-tile OOM; NOAA repack fits
		GitMemoryBudget: 4 << 20,
		Seed:            42,
	}
}

// QuickScale is a reduced configuration for go test benchmarks.
func QuickScale() Scale {
	return Scale{
		NOAASide: 64, NOAAVersions: 5, NOAAAttrs: 3,
		OSMSide: 512, OSMVersions: 6,
		CNetDim: 100_000, CNetNNZ: 5_000, CNetVersions: 6,
		PanoSide: 64, PanoVersions: 12, PanoScenes: 3,
		PeriodicVersions: 12, PeriodicBytes: 16 << 10,
		ChunkBytes:      32 << 10,
		BlockRadius:     4,
		GitMemoryBudget: 512 << 10,
		Seed:            42,
	}
}

// timed runs fn and returns its wall-clock duration.
func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
