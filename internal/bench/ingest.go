package bench

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
)

// The ingest experiment measures the durable write path: concurrent
// writers inserting small dense versions into one array of a
// crash-safe (Options.Durability) store, with the group-commit
// coalescer on (production default) versus off (every insert pays its
// own fsync schedule and metadata commit — the pre-group-commit
// behavior). One shared array concentrates the commit contention the
// coalescer exists for; both modes still benefit identically from the
// pipelined commit stages, so the grouped-vs-per-insert delta isolates
// the coalescing itself.

// IngestResult is one (mode, writers) configuration's measurement,
// serialized into BENCH_ingest.json by cmd/avbench.
type IngestResult struct {
	Mode          string  `json:"mode"` // "grouped" or "per-insert"
	Writers       int     `json:"writers"`
	Inserts       int     `json:"inserts"`
	NsPerInsert   int64   `json:"ns_per_insert"`
	InsertsPerSec float64 `json:"inserts_per_sec"`
	// GroupCommits is the number of shared commit points the run paid;
	// CoalesceFactor is inserts/commits (1.0 = no sharing).
	GroupCommits   int64   `json:"group_commits"`
	CoalesceFactor float64 `json:"coalesce_factor"`
}

// IngestSummary is the whole experiment: every configuration plus the
// headline grouped-vs-per-insert speedup at the highest fan-out, which
// CI gates on.
type IngestSummary struct {
	Results []IngestResult `json:"results"`
	// Speedup[w] is grouped inserts/sec over per-insert inserts/sec at w
	// writers, keyed by the decimal writer count.
	Speedup map[string]float64 `json:"speedup"`
	// SpeedupAt8 repeats Speedup["8"] for the jq gate.
	SpeedupAt8 float64 `json:"speedup_at_8"`
}

// ingestFanouts are the concurrent writer counts measured.
var ingestFanouts = []int{1, 2, 4, 8}

// Ingest runs the durable-ingest experiment and returns the rendered
// table plus the machine-readable summary.
func Ingest(workDir string, sc Scale, parallelism int) (Table, IngestSummary, error) {
	const side = 32 // 4 KB int32 payloads: commit cost dominates encode
	const trials = 3
	total := 160
	if sc.NOAASide < 128 {
		total = 96 // quick scale
	}

	summary := IngestSummary{Speedup: map[string]float64{}}
	perInsertRate := map[int]float64{}
	run := 0
	for _, mode := range []string{"per-insert", "grouped"} {
		for _, writers := range ingestFanouts {
			// median of N trials per cell: a shared box's transient fs
			// stalls (journal flushes, neighbors) otherwise dominate a
			// single short durable run in either direction
			var cell []IngestResult
			for trial := 0; trial < trials; trial++ {
				run++
				dir := filepath.Join(workDir, fmt.Sprintf("ingest-%d", run))
				res, err := runIngestConfig(dir, mode, writers, total, side, parallelism)
				if err != nil {
					return Table{}, IngestSummary{}, err
				}
				cell = append(cell, res)
			}
			sort.Slice(cell, func(a, b int) bool { return cell[a].InsertsPerSec < cell[b].InsertsPerSec })
			med := cell[len(cell)/2]
			summary.Results = append(summary.Results, med)
			if mode == "per-insert" {
				perInsertRate[writers] = med.InsertsPerSec
			} else if base := perInsertRate[writers]; base > 0 {
				summary.Speedup[fmt.Sprintf("%d", writers)] = med.InsertsPerSec / base
			}
		}
	}
	summary.SpeedupAt8 = summary.Speedup["8"]

	t := Table{
		Title:   "Durable ingest — group commit vs per-insert commit",
		Columns: []string{"Mode", "Writers", "Inserts", "ns/insert", "inserts/s", "commits", "coalesce"},
	}
	for _, r := range summary.Results {
		t.Rows = append(t.Rows, []string{
			r.Mode,
			fmt.Sprintf("%d", r.Writers),
			fmt.Sprintf("%d", r.Inserts),
			fmt.Sprintf("%d", r.NsPerInsert),
			fmt.Sprintf("%.0f", r.InsertsPerSec),
			fmt.Sprintf("%d", r.GroupCommits),
			fmt.Sprintf("%.1fx", r.CoalesceFactor),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d durable inserts of %dx%d int32 versions into one shared array per run; every run read back byte-identical and verified",
			total, side, side),
		fmt.Sprintf("grouped commit at 8 writers: %.1fx the per-insert-commit baseline", summary.SpeedupAt8))
	return t, summary, nil
}

// runIngestConfig measures one (mode, writers) cell on a fresh durable
// store and fails if any committed version does not read back
// byte-identical.
func runIngestConfig(dir, mode string, writers, total int, side int64, parallelism int) (IngestResult, error) {
	opts := core.DefaultOptions()
	opts.Durability = true
	opts.Parallelism = parallelism
	opts.DisableGroupCommit = mode == "per-insert"
	// bulk-ingest shape: materialize every version instead of reading
	// the predecessor back for delta analysis on each insert — the
	// experiment measures the durable commit path, not chain decoding
	// (both modes run identically either way)
	opts.AutoDelta = false
	store, err := core.Open(dir, opts)
	if err != nil {
		return IngestResult{}, err
	}
	defer store.Close()
	const name = "Ingest"
	sch := array.Schema{
		Name:  name,
		Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: side - 1}, {Name: "X", Lo: 0, Hi: side - 1}},
		Attrs: []array.Attribute{{Name: "V", Type: array.Int32}},
	}
	if err := store.CreateArray(sch); err != nil {
		return IngestResult{}, err
	}
	content := func(seed int) *array.Dense {
		d := array.MustDense(array.Int32, []int64{side, side})
		for i := int64(0); i < d.NumCells(); i++ {
			d.SetBits(i, int64(seed)*2654435761+i*31)
		}
		return d
	}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		written  = map[int]int{} // version id -> seed
		firstErr error
		failed   atomic.Bool
		wg       sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				seed := int(next.Add(1)) - 1
				if seed >= total {
					return
				}
				id, err := store.Insert(name, core.DensePayload(content(seed)))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				mu.Lock()
				written[id] = seed
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return IngestResult{}, firstErr
	}
	// correctness: every acknowledged insert reads back byte-identical
	for id, seed := range written {
		pl, err := store.Select(name, id)
		if err != nil {
			return IngestResult{}, fmt.Errorf("ingest %s writers=%d: version %d unreadable: %w", mode, writers, id, err)
		}
		if !pl.Dense.Equal(content(seed)) {
			return IngestResult{}, fmt.Errorf("ingest %s writers=%d: version %d not byte-identical", mode, writers, id)
		}
	}
	rep, err := store.Verify(name)
	if err != nil {
		return IngestResult{}, err
	}
	if !rep.Ok() {
		return IngestResult{}, fmt.Errorf("ingest %s writers=%d: verify failed: %v", mode, writers, rep.Problems)
	}
	st := store.Stats()
	res := IngestResult{
		Mode:          mode,
		Writers:       writers,
		Inserts:       total,
		NsPerInsert:   elapsed.Nanoseconds() / int64(total),
		InsertsPerSec: float64(total) / elapsed.Seconds(),
		GroupCommits:  st.GroupCommits,
	}
	if st.GroupCommits > 0 {
		res.CoalesceFactor = float64(st.GroupCommitVersions) / float64(st.GroupCommits)
	}
	return res, nil
}
