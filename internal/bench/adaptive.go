package bench

import (
	"fmt"
	"math/rand"
	"os"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
	"arrayvers/internal/workload"
)

// The adaptive experiment measures the closed workload loop this repo
// adds on top of the paper's §IV-D: a skewed (Zipfian) single-version
// read trace hammers old versions of a linear-chain-encoded array — the
// §V-D baseline layout, pathological for that trace because every read
// of an old version unwinds the whole chain — then the adaptive tuner
// observes the recorded workload and re-lays the array out. The
// experiment reports select read amplification (bytes read from disk
// per logical byte requested) before and after the tuner pass; the CI
// quick-bench job fails unless the post-tune I/O is strictly below the
// untuned run.

// AdaptiveRun is one trace replay's I/O measurement.
type AdaptiveRun struct {
	Name       string `json:"name"`
	ReadBytes  int64  `json:"read_bytes"`
	ChunksRead int64  `json:"chunks_read"`
	// ReadAmplification is bytes read / logical bytes requested.
	ReadAmplification float64 `json:"read_amplification"`
}

// AdaptiveResult is the machine-readable experiment outcome, serialized
// into BENCH_adaptive.json by cmd/avbench.
type AdaptiveResult struct {
	Versions     int     `json:"versions"`
	TraceOps     int     `json:"trace_ops"`
	ZipfS        float64 `json:"zipf_s"`
	LogicalBytes int64   `json:"logical_bytes_requested"`
	// Untuned replays the trace against the linear-chain baseline;
	// PostTune replays the identical trace after one adaptive pass.
	Untuned  AdaptiveRun `json:"untuned"`
	PostTune AdaptiveRun `json:"post_tune"`
	// Reduction is the fractional drop in read bytes (1 - post/untuned).
	Reduction float64         `json:"reduction"`
	Tune      core.TuneReport `json:"tune"`
}

// adaptiveTraceOps is the skewed trace length; enough weight lands on
// the hot old versions to clear the tuner's MinOps threshold many times
// over while keeping the quick CI run cheap.
const adaptiveTraceOps = 150

// adaptiveZipfS is the Zipf exponent: heavily skewed toward the oldest
// versions, the worst case for the linear-chain baseline.
const adaptiveZipfS = 1.6

// Adaptive runs the experiment. The decoded-chunk cache is forced off so
// the byte counters measure real chain-walk I/O, matching the paper's
// accounting.
func Adaptive(workDir string, sc Scale, parallelism int) (Table, AdaptiveResult, error) {
	res := AdaptiveResult{
		Versions: HotPathVersions,
		TraceOps: adaptiveTraceOps,
		ZipfS:    adaptiveZipfS,
	}
	side := sc.NOAASide
	if side < 64 {
		side = 64
	}
	dir := workDir + "/adaptive"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Table{}, res, err
	}
	opts := core.DefaultOptions()
	opts.ChunkBytes = hotPathChunkBytes
	opts.Parallelism = parallelism
	opts.CacheBytes = 0
	s, err := core.Open(dir, opts)
	if err != nil {
		return Table{}, res, err
	}
	sch := array.Schema{
		Name:  "Chain",
		Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: side - 1}, {Name: "X", Lo: 0, Hi: side - 1}},
		Attrs: []array.Attribute{{Name: "V", Type: array.Int32}},
	}
	if err := s.CreateArray(sch); err != nil {
		return Table{}, res, err
	}
	for _, v := range AdaptiveSeries(side, sc.Seed) {
		if _, err := s.Insert("Chain", core.DensePayload(v)); err != nil {
			return Table{}, res, err
		}
	}
	// the untuned baseline: a linear chain differenced backwards from
	// the newest version (§V-D), so the Zipf-hot oldest versions sit at
	// the far end of the delta chain
	if err := s.Reorganize("Chain", core.ReorganizeOptions{Policy: core.PolicyLinearChain}); err != nil {
		return Table{}, res, err
	}

	trace := workload.Zipfian(HotPathVersions, adaptiveTraceOps, adaptiveZipfS, sc.Seed)
	replay := func(name string) (AdaptiveRun, error) {
		s.ResetStats()
		logical, err := replayReadOps(s, "Chain", trace)
		if err != nil {
			return AdaptiveRun{}, err
		}
		res.LogicalBytes = logical
		st := s.Stats()
		return AdaptiveRun{
			Name:              name,
			ReadBytes:         st.BytesRead,
			ChunksRead:        st.ChunksRead,
			ReadAmplification: float64(st.BytesRead) / float64(logical),
		}, nil
	}

	// cold replay on the linear layout; this is also what feeds the
	// tuner's workload histogram
	if res.Untuned, err = replay("linear-untuned"); err != nil {
		return Table{}, res, err
	}
	rep, err := s.Tune("Chain")
	if err != nil {
		return Table{}, res, err
	}
	res.Tune = rep
	if !rep.Reorganized {
		return Table{}, res, fmt.Errorf("bench: adaptive tuner declined to reorganize: %s", rep.Reason)
	}
	if res.PostTune, err = replay("post-tune"); err != nil {
		return Table{}, res, err
	}
	if res.Untuned.ReadBytes > 0 {
		res.Reduction = 1 - float64(res.PostTune.ReadBytes)/float64(res.Untuned.ReadBytes)
	}

	t := Table{
		Title:   "Adaptive reorganization — skewed trace, auto-tuned layout",
		Columns: []string{"Config", "Read bytes", "Chunks", "Read amp.", "vs untuned"},
	}
	for _, r := range []AdaptiveRun{res.Untuned, res.PostTune} {
		vs := "1.00x"
		if r.Name != res.Untuned.Name && res.Untuned.ReadBytes > 0 {
			vs = fmt.Sprintf("%.2fx", float64(r.ReadBytes)/float64(res.Untuned.ReadBytes))
		}
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmtBytes(r.ReadBytes),
			fmt.Sprintf("%d", r.ChunksRead),
			fmt.Sprintf("%.2f", r.ReadAmplification),
			vs,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Zipf(s=%.1f) trace of %d selects over a %d-version chain of %dx%d int32 cells, hottest = oldest",
			adaptiveZipfS, adaptiveTraceOps, HotPathVersions, side, side),
		fmt.Sprintf("tuner: %.1f recorded ops, projected savings %.1f%% (threshold %.1f%%), read bytes down %.1f%%",
			rep.Ops, rep.Savings*100, rep.MinSavings*100, res.Reduction*100),
	)
	return t, res, nil
}

// AdaptiveSeries builds the experiment's version series: like
// HotPathSeries but with a quarter of the cells changing per step, so
// consecutive deltas carry real weight and a long chain walk costs
// several times a materialized read — the regime where layout choice
// dominates select I/O (§IV-D).
func AdaptiveSeries(side, seed int64) []*array.Dense {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*array.Dense, HotPathVersions)
	cur := array.MustDense(array.Int32, []int64{side, side})
	for i := int64(0); i < cur.NumCells(); i++ {
		cur.SetBits(i, int64(rng.Intn(1000)))
	}
	for v := range out {
		out[v] = cur.Clone()
		for i := int64(0); i < cur.NumCells(); i++ {
			if rng.Float64() < 0.25 {
				cur.SetBits(i, cur.Bits(i)+int64(rng.Intn(9)-4))
			}
		}
	}
	return out
}

// replayReadOps executes a read-only workload trace against a store and
// returns the logical bytes the trace requested (versions × plane size).
func replayReadOps(s *core.Store, name string, ops []workload.Op) (int64, error) {
	info, err := s.Info(name)
	if err != nil {
		return 0, err
	}
	logical := int64(0)
	for _, op := range ops {
		switch op.Kind {
		case workload.SelectOne:
			if _, err := s.Select(name, op.Versions[0]); err != nil {
				return 0, err
			}
		case workload.SelectRange:
			if _, err := s.SelectMulti(name, op.Versions); err != nil {
				return 0, err
			}
		default:
			return 0, fmt.Errorf("bench: replay supports read ops only, got %v", op.Kind)
		}
		logical += int64(len(op.Versions)) * info.LogicalSize
	}
	return logical, nil
}
