package bench

import (
	"fmt"

	"arrayvers/internal/array"
	"arrayvers/internal/compress"
	"arrayvers/internal/datasets"
	"arrayvers/internal/delta"
)

// E1 — Table I: performance of selected differencing algorithms on the
// NOAA substitute (the paper used the first 10 versions × ~9 measurement
// types = 88 array objects). Each method imports the series as a linear
// chain (first version materialized, each later version delta'ed against
// its predecessor), then queries every version back.
func Table1(sc Scale) (Table, error) {
	series := noaaSeries(sc)
	type method struct {
		name   string
		encode func(target, base *array.Dense) ([]byte, error)
		decode func(blob []byte, base *array.Dense) (*array.Dense, error)
	}
	methods := []method{
		{"Uncompressed", nil, nil},
		{"Dense", enc(delta.Dense), delta.Apply},
		{"Sparse", enc(delta.Sparse), delta.Apply},
		{"Hybrid", enc(delta.Hybrid), delta.Apply},
		{fmt.Sprintf("MPEG-2-like (r=%d)", sc.BlockRadius), func(t, b *array.Dense) ([]byte, error) {
			return delta.EncodeBlockMatchRadius(t, b, delta.DefaultBlockSize, sc.BlockRadius)
		}, delta.Apply},
		{"BSDiff", enc(delta.BSDiff), delta.Apply},
	}
	t := Table{
		Title:   "Table I — Performance of Selected Differencing Algorithms (NOAA substitute)",
		Columns: []string{"Delta Algorithm", "Import Time", "Size", "Query Time"},
	}
	for _, m := range methods {
		var size int64
		var blobs [][][]byte // [attr][version]
		importTime, err := timed(func() error {
			blobs = make([][][]byte, len(series))
			for ai, chain := range series {
				blobs[ai] = make([][]byte, len(chain))
				for v, arr := range chain {
					if v == 0 || m.encode == nil {
						blobs[ai][v] = array.MarshalDense(arr)
					} else {
						blob, err := m.encode(arr, chain[v-1])
						if err != nil {
							return err
						}
						// "if an array would use less space on disk if
						// stored without delta compression, the system
						// will choose not to use it"
						if nat := array.MarshalDense(arr); len(nat) < len(blob) {
							blob = nat
						}
						blobs[ai][v] = blob
					}
					size += int64(len(blobs[ai][v]))
				}
			}
			return nil
		})
		if err != nil {
			return Table{}, fmt.Errorf("table1 %s: %w", m.name, err)
		}
		queryTime, err := timed(func() error {
			for ai := range blobs {
				var prev *array.Dense
				for v, blob := range blobs[ai] {
					var arr *array.Dense
					var err error
					if mm, _ := delta.MethodOf(blob); v == 0 || m.decode == nil || mm == 0 {
						arr, err = array.UnmarshalDense(blob)
					} else {
						arr, err = m.decode(blob, prev)
					}
					if err != nil {
						return err
					}
					if !arr.Equal(series[ai][v]) {
						return fmt.Errorf("%s: version %d corrupted", m.name, v)
					}
					prev = arr
				}
			}
			return nil
		})
		if err != nil {
			return Table{}, fmt.Errorf("table1 %s: %w", m.name, err)
		}
		t.Rows = append(t.Rows, []string{m.name, fmtDur(importTime), fmtBytes(size), fmtDur(queryTime)})
	}
	return t, nil
}

func enc(m delta.Method) func(t, b *array.Dense) ([]byte, error) {
	return func(t, b *array.Dense) ([]byte, error) { return delta.Encode(m, t, b) }
}

// noaaSeries generates the NOAA substitute organized as one chain per
// attribute ("each type of measurement was stored ... in its own
// versioned matrix").
func noaaSeries(sc Scale) [][]*array.Dense {
	raw := datasets.NOAA(datasets.NOAAConfig{
		Side: sc.NOAASide, Versions: sc.NOAAVersions, Attrs: sc.NOAAAttrs, Seed: sc.Seed,
	})
	series := make([][]*array.Dense, sc.NOAAAttrs)
	for ai := 0; ai < sc.NOAAAttrs; ai++ {
		chain := make([]*array.Dense, len(raw))
		for v := range raw {
			chain[v] = raw[v][ai]
		}
		series[ai] = chain
	}
	return series
}

// E2 — Table II: compression algorithm performance on delta arrays. The
// difference arrays of the NOAA chains (hybrid-style cellwise diffs,
// stored as int32 grids) are compressed with each codec; query time
// includes decompression plus applying the diff.
func Table2(sc Scale) (Table, error) {
	series := noaaSeries(sc)
	// build raw difference grids once
	type diffed struct {
		grid *array.Dense // int32 cellwise wrapping differences
		base *array.Dense
	}
	var diffs []diffed
	var deltaOnly int64
	for _, chain := range series {
		for v := 1; v < len(chain); v++ {
			grid := array.MustDense(array.Int32, chain[v].Shape())
			n := grid.NumCells()
			for i := int64(0); i < n; i++ {
				grid.SetBits(i, int64(int32(uint32(chain[v].Bits(i))-uint32(chain[v-1].Bits(i)))))
			}
			diffs = append(diffs, diffed{grid, chain[v-1]})
			hb, err := delta.Encode(delta.Hybrid, chain[v], chain[v-1])
			if err != nil {
				return Table{}, err
			}
			deltaOnly += int64(len(hb))
		}
	}
	t := Table{
		Title:   "Table II — Compression Algorithm Performance on Delta Arrays (NOAA substitute)",
		Columns: []string{"Compression", "Size", "Query Time"},
	}
	// the paper's first row is the uncompressed hybrid delta
	hybridQuery, err := timed(func() error {
		for _, d := range diffs {
			if err := applyDiffGrid(d.grid, d.base); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{"Hybrid Delta only", fmtBytes(deltaOnly), fmtDur(hybridQuery)})

	codecs := []struct {
		name  string
		codec compress.Codec
	}{
		{"Lempel-Ziv", compress.LZ},
		{"Run-Length Encoding", compress.RLE},
		{"PNG compression", compress.PNG},
		{"JPEG 2000 compression", compress.Wavelet},
	}
	for _, c := range codecs {
		var size int64
		var packed [][]byte
		params := make([]compress.Params, len(diffs))
		for i, d := range diffs {
			shape := d.grid.Shape()
			params[i] = compress.Params{Elem: 4, Width: int(shape[1]), Height: int(shape[0])}
			blob, err := compress.Compress(c.codec, d.grid.Bytes(), params[i])
			if err != nil {
				return Table{}, fmt.Errorf("table2 %s: %w", c.name, err)
			}
			packed = append(packed, blob)
			size += int64(len(blob))
		}
		queryTime, err := timed(func() error {
			for i, blob := range packed {
				raw, err := compress.Decompress(c.codec, blob, params[i])
				if err != nil {
					return err
				}
				grid, err := array.DenseFromBytes(array.Int32, diffs[i].grid.Shape(), raw)
				if err != nil {
					return err
				}
				if err := applyDiffGrid(grid, diffs[i].base); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Table{}, fmt.Errorf("table2 %s: %w", c.name, err)
		}
		t.Rows = append(t.Rows, []string{c.name, fmtBytes(size), fmtDur(queryTime)})
	}

	// the surrounding text's comparison: compressing the original arrays
	// directly, without deltas
	var lzAlone, rleAlone int64
	for _, chain := range series {
		for _, arr := range chain {
			shape := arr.Shape()
			p := compress.Params{Elem: 4, Width: int(shape[1]), Height: int(shape[0])}
			lz, err := compress.Compress(compress.LZ, arr.Bytes(), p)
			if err != nil {
				return Table{}, err
			}
			rle, err := compress.Compress(compress.RLE, arr.Bytes(), p)
			if err != nil {
				return Table{}, err
			}
			lzAlone += int64(len(lz))
			rleAlone += int64(len(rle))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("LZ alone on original arrays (no deltas): %s", fmtBytes(lzAlone)),
		fmt.Sprintf("RLE alone on original arrays (no deltas): %s", fmtBytes(rleAlone)),
	)
	return t, nil
}

// applyDiffGrid reconstructs target cells from a difference grid and the
// base array (float32 bit patterns + int32 wrapping diffs).
func applyDiffGrid(grid, base *array.Dense) error {
	n := grid.NumCells()
	out := array.MustDense(base.DType(), base.Shape())
	for i := int64(0); i < n; i++ {
		out.SetBits(i, int64(uint32(base.Bits(i))+uint32(grid.Bits(i))))
	}
	_ = out
	return nil
}
