package wire

import (
	"bytes"
	"testing"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
)

// FuzzFrameCodec drives every wire decoder that faces network bytes
// with arbitrary input: the frame reader, the insert-payload decoder,
// and the plane/sparse-set readers. None may panic or allocate beyond
// the size limit regardless of input; whatever decodes successfully
// must re-encode cleanly (the codec is total on its own output).
func FuzzFrameCodec(f *testing.F) {
	// seed corpus: one valid frame of every kind plus both payload forms
	dense := array.MustDense(array.Int32, []int64{4, 4})
	for i := int64(0); i < dense.NumCells(); i++ {
		dense.SetBits(i, i*7)
	}
	sparse := array.MustSparse(array.Float64, []int64{32, 32}, 0)
	sparse.SetBits(17, 99)
	sparse.SetBits(900, -3)

	var buf bytes.Buffer
	_ = WriteDense(&buf, dense)
	f.Add(buf.Bytes())
	buf.Reset()
	_ = WritePlane(&buf, core.Plane{Sparse: sparse})
	f.Add(buf.Bytes())
	buf.Reset()
	_ = WriteSparseSet(&buf, []*array.Sparse{sparse, sparse})
	f.Add(buf.Bytes())
	buf.Reset()
	_ = WritePayload(&buf, core.DensePayload(dense))
	f.Add(buf.Bytes())
	buf.Reset()
	_ = WritePayload(&buf, core.DeltaListPayload(2, []core.CellUpdate{
		{Attr: "A", Coords: []int64{1, 2}, Bits: 42},
		{Coords: []int64{3, 3}, Bits: -1},
	}))
	f.Add(buf.Bytes())
	// hostile shapes: truncated header, bad magic, oversized length
	f.Add([]byte("AVF1"))
	f.Add([]byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("AVF1\x01\xff\xff\xff\xff\xff\xff\xff\xff"))

	const max = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > max {
			return
		}
		if kind, payload, err := ReadFrame(bytes.NewReader(data), max); err == nil {
			var out bytes.Buffer
			if err := WriteFrame(&out, kind, payload); err != nil {
				t.Fatalf("re-encode of decoded frame failed: %v", err)
			}
		}
		if p, err := DecodePayload(data); err == nil {
			if _, err := EncodePayload(p); err != nil {
				t.Fatalf("re-encode of decoded payload failed: %v", err)
			}
		}
		_, _ = ReadPlane(bytes.NewReader(data), max)
		_, _ = ReadSparseSet(bytes.NewReader(data), max)
		_, _ = ReadDense(bytes.NewReader(data), max)
		_, _ = ReadPayload(bytes.NewReader(data), max)
	})
}
