package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
)

func testDense(t *testing.T) *array.Dense {
	t.Helper()
	d, err := array.NewDense(array.Int32, []int64{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < d.NumCells(); i++ {
		d.SetBits(i, i*3-17)
	}
	return d
}

func testSparse(t *testing.T) *array.Sparse {
	t.Helper()
	sp, err := array.NewSparse(array.Float64, []int64{100, 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		sp.SetBits(i*199, i<<20)
	}
	return sp
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, KindPayload, payload); err != nil {
		t.Fatal(err)
	}
	kind, got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindPayload || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: kind=%d payload=%q", kind, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindDense, nil); err != nil {
		t.Fatal(err)
	}
	kind, got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindDense || len(got) != 0 {
		t.Fatalf("kind=%d len=%d", kind, len(got))
	}
}

func TestFrameBadMagic(t *testing.T) {
	raw := []byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00")
	if _, _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindDense, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// every strict prefix must be rejected as truncated
	for cut := 0; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]), 0)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindDense, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 1023); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	// a hostile length prefix must be rejected before allocation
	hostile := []byte{'A', 'V', 'F', '1', 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := ReadFrame(bytes.NewReader(hostile), 1<<20); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("hostile length: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestPlaneRoundTripDense(t *testing.T) {
	d := testDense(t)
	var buf bytes.Buffer
	if err := WritePlane(&buf, core.Plane{Dense: d}); err != nil {
		t.Fatal(err)
	}
	pl, err := ReadPlane(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Dense == nil || !pl.Dense.Equal(d) {
		t.Fatal("dense plane round trip mismatch")
	}
}

func TestPlaneRoundTripSparse(t *testing.T) {
	sp := testSparse(t)
	var buf bytes.Buffer
	if err := WritePlane(&buf, core.Plane{Sparse: sp}); err != nil {
		t.Fatal(err)
	}
	pl, err := ReadPlane(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Sparse == nil || !pl.Sparse.Equal(sp) {
		t.Fatal("sparse plane round trip mismatch")
	}
}

func TestPlaneEmptyRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePlane(&buf, core.Plane{}); err == nil {
		t.Fatal("empty plane accepted")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	d := testDense(t)
	var buf bytes.Buffer
	if err := WriteDense(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Fatal("dense round trip mismatch")
	}
}

func TestReadDenseWrongKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePlane(&buf, core.Plane{Sparse: testSparse(t)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDense(&buf, 0); err == nil {
		t.Fatal("sparse frame accepted as dense")
	}
}

func TestSparseSetRoundTrip(t *testing.T) {
	set := []*array.Sparse{testSparse(t), testSparse(t)}
	set[1].SetBits(2345, 99)
	var buf bytes.Buffer
	if err := WriteSparseSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSparseSet(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Equal(set[0]) || !got[1].Equal(set[1]) {
		t.Fatal("sparse set round trip mismatch")
	}
	// empty set
	buf.Reset()
	if err := WriteSparseSet(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err = ReadSparseSet(&buf, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty set: %v, %d elements", err, len(got))
	}
}

func TestSparseSetTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSparseSet(&buf, []*array.Sparse{testSparse(t)}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// chop the inner payload (keep the frame header consistent by
	// rebuilding the frame around a truncated body)
	kind, body, err := ReadFrame(bytes.NewReader(full), 0)
	if err != nil || kind != KindSparseSet {
		t.Fatal(err)
	}
	var short bytes.Buffer
	if err := WriteFrame(&short, KindSparseSet, body[:len(body)-3]); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSparseSet(&short, 0); err == nil {
		t.Fatal("truncated sparse set accepted")
	}
}

func TestPayloadRoundTripPlanes(t *testing.T) {
	p := core.Payload{Planes: []core.Plane{{Dense: testDense(t)}, {Sparse: testSparse(t)}}}
	var buf bytes.Buffer
	if err := WritePayload(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPayload(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Planes) != 2 || got.DeltaBase != 0 {
		t.Fatalf("planes=%d base=%d", len(got.Planes), got.DeltaBase)
	}
	if got.Planes[0].Dense == nil || !got.Planes[0].Dense.Equal(p.Planes[0].Dense) {
		t.Fatal("plane 0 mismatch")
	}
	if got.Planes[1].Sparse == nil || !got.Planes[1].Sparse.Equal(p.Planes[1].Sparse) {
		t.Fatal("plane 1 mismatch")
	}
}

func TestPayloadRoundTripDeltaList(t *testing.T) {
	p := core.DeltaListPayload(7, []core.CellUpdate{
		{Coords: []int64{0, 5}, Bits: -42},
		{Attr: "Temp", Coords: []int64{31, 0}, Bits: 1 << 40},
	})
	var buf bytes.Buffer
	if err := WritePayload(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPayload(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.DeltaBase != 7 || len(got.Updates) != 2 {
		t.Fatalf("base=%d updates=%d", got.DeltaBase, len(got.Updates))
	}
	u := got.Updates[1]
	if u.Attr != "Temp" || u.Coords[0] != 31 || u.Coords[1] != 0 || u.Bits != 1<<40 {
		t.Fatalf("update 1: %+v", u)
	}
	if got.Updates[0].Bits != -42 {
		t.Fatalf("update 0 bits: %d", got.Updates[0].Bits)
	}
}

func TestPayloadEmptyRejected(t *testing.T) {
	if _, err := EncodePayload(core.Payload{}); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := DecodePayload(nil); err == nil {
		t.Fatal("empty blob accepted")
	}
	if _, err := DecodePayload([]byte{99}); err == nil {
		t.Fatal("unknown form accepted")
	}
}

// TestHostileCounts checks a claimed element count far beyond the bytes
// actually present is rejected (or bounded) instead of driving a giant
// pre-allocation.
func TestHostileCounts(t *testing.T) {
	// delta-list payload claiming 2^30 coords with a few bytes of input
	hostile := []byte{payloadFormDeltaList}
	hostile = append(hostile, 7)            // base
	hostile = append(hostile, 1)            // one update
	hostile = append(hostile, 0)            // empty attr
	hostile = appendUvarint(hostile, 1<<30) // ncoords
	hostile = append(hostile, 1, 2, 3)
	if _, err := DecodePayload(hostile); err == nil {
		t.Fatal("hostile coord count accepted")
	}
	// sparse set claiming many elements backed by nothing: per-element
	// reads fail on the first missing length
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindSparseSet, appendUvarint(nil, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSparseSet(&buf, 0); err == nil {
		t.Fatal("hostile sparse set count accepted")
	}
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func TestPayloadTruncated(t *testing.T) {
	p := core.Payload{Planes: []core.Plane{{Dense: testDense(t)}}}
	blob, err := EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(blob); cut += 7 {
		if _, err := DecodePayload(blob[:cut]); err == nil {
			t.Fatalf("truncated payload of %d/%d bytes accepted", cut, len(blob))
		}
	}
}

func TestPayloadBatchRoundTrip(t *testing.T) {
	ps := []core.Payload{
		core.DensePayload(testDense(t)),
		core.DeltaListPayload(1, []core.CellUpdate{{Coords: []int64{2, 3}, Bits: 99}}),
		core.DensePayload(testDense(t)),
	}
	var buf bytes.Buffer
	if err := WritePayloadBatch(&buf, ps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPayloadBatch(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("decoded %d payloads, want %d", len(got), len(ps))
	}
	if !got[0].Planes[0].Dense.Equal(ps[0].Planes[0].Dense) {
		t.Fatal("batch member 0 corrupted")
	}
	if got[1].DeltaBase != 1 || len(got[1].Updates) != 1 || got[1].Updates[0].Bits != 99 {
		t.Fatalf("batch member 1 corrupted: %+v", got[1])
	}
}

func TestPayloadBatchRejectsEmptyAndTruncated(t *testing.T) {
	if err := WritePayloadBatch(io.Discard, nil); err == nil {
		t.Fatal("empty batch encoded")
	}
	if _, err := ReadPayloadBatch(bytes.NewReader(nil), 0); err == nil {
		t.Fatal("empty batch body decoded")
	}
	// a batch cut mid-frame must error, not silently shorten
	var buf bytes.Buffer
	if err := WritePayloadBatch(&buf, []core.Payload{
		core.DensePayload(testDense(t)),
		core.DensePayload(testDense(t)),
	}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-7]
	if _, err := ReadPayloadBatch(bytes.NewReader(cut), 0); err == nil {
		t.Fatal("truncated batch decoded cleanly")
	}
	// a foreign frame kind inside the batch is rejected
	var mixed bytes.Buffer
	if err := WritePayload(&mixed, core.DensePayload(testDense(t))); err != nil {
		t.Fatal(err)
	}
	if err := WriteDense(&mixed, testDense(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPayloadBatch(bytes.NewReader(mixed.Bytes()), 0); err == nil {
		t.Fatal("batch with a foreign frame kind decoded cleanly")
	}
}

func TestDenseNoCopyMatchesCopyingPath(t *testing.T) {
	d := testDense(t)
	var copied bytes.Buffer
	if err := WriteDense(&copied, d); err != nil {
		t.Fatal(err)
	}
	var vectored bytes.Buffer
	n, err := WriteDenseNoCopy(&vectored, d)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(d.Bytes())) {
		t.Fatalf("zero-copy bytes = %d, want %d", n, len(d.Bytes()))
	}
	// the vectored writer must emit exactly the bytes the copying path
	// does, so readers cannot tell which path the server took
	if !bytes.Equal(vectored.Bytes(), copied.Bytes()) {
		t.Fatal("vectored frame differs from copying frame")
	}
	got, err := ReadDense(&vectored, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Fatal("no-copy dense round trip mismatch")
	}
}

func TestPlaneNoCopy(t *testing.T) {
	d := testDense(t)
	var buf bytes.Buffer
	n, err := WritePlaneNoCopy(&buf, core.Plane{Dense: d})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(d.Bytes())) {
		t.Fatalf("zero-copy bytes = %d, want %d", n, len(d.Bytes()))
	}
	pl, err := ReadPlane(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Dense == nil || !pl.Dense.Equal(d) {
		t.Fatal("no-copy dense plane round trip mismatch")
	}

	sp := testSparse(t)
	buf.Reset()
	n, err = WritePlaneNoCopy(&buf, core.Plane{Sparse: sp})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("sparse plane reported %d zero-copy bytes, want 0", n)
	}
	pl, err = ReadPlane(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Sparse == nil || !pl.Sparse.Equal(sp) {
		t.Fatal("no-copy sparse plane round trip mismatch")
	}

	if _, err := WritePlaneNoCopy(&buf, core.Plane{}); err == nil {
		t.Fatal("empty plane accepted")
	}
}
