// Package wire is the binary frame codec of the avstored service layer
// (see DESIGN.md "Service layer"). Control messages travel as JSON over
// HTTP; array payloads — dense planes, sparse planes, insert payloads,
// sparse result sets — travel as length-prefixed binary frames built on
// the internal/array blob format, so dense data never round-trips
// through base64 or JSON number arrays.
//
// Frame layout (little-endian):
//
//	offset 0: 4-byte magic "AVF1"
//	offset 4: 1-byte frame kind
//	offset 5: 8-byte payload length
//	offset 13: payload bytes
//
// Readers enforce a maximum payload length so a corrupt or hostile
// length prefix cannot drive an unbounded allocation, and reject
// truncated headers and payloads.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
)

// Kind discriminates frame payloads.
type Kind uint8

// Frame kinds.
const (
	// KindDense carries one array.MarshalDense blob.
	KindDense Kind = 1
	// KindSparse carries one array.MarshalSparse blob.
	KindSparse Kind = 2
	// KindPayload carries an insert payload in any of the three forms
	// (see EncodePayload).
	KindPayload Kind = 3
	// KindSparseSet carries an ordered set of sparse arrays (the
	// SelectSparseMulti result shape).
	KindSparseSet Kind = 4
	// KindMultiHeader carries the JSON part table of a multi-array
	// atomic batch (see WriteMultiBatch).
	KindMultiHeader Kind = 5
)

// DefaultMaxFrameBytes bounds frame payloads when the caller passes a
// non-positive limit to the read functions.
const DefaultMaxFrameBytes = 1 << 30

var magic = [4]byte{'A', 'V', 'F', '1'}

// headerLen is the fixed frame header size: magic + kind + length.
const headerLen = 13

// Sentinel errors, matchable with errors.Is.
var (
	ErrBadMagic      = errors.New("wire: bad frame magic")
	ErrFrameTooLarge = errors.New("wire: frame payload exceeds size limit")
)

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, kind Kind, payload []byte) error {
	var hdr [headerLen]byte
	copy(hdr[:4], magic[:])
	hdr[4] = byte(kind)
	binary.LittleEndian.PutUint64(hdr[5:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame, rejecting bad magic, truncated input, and
// payloads larger than max (DefaultMaxFrameBytes when max <= 0).
func ReadFrame(r io.Reader, max int64) (Kind, []byte, error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return 0, nil, fmt.Errorf("wire: truncated frame header: %w", io.ErrUnexpectedEOF)
		}
		return 0, nil, fmt.Errorf("wire: read frame header: %w", err)
	}
	if !bytes.Equal(hdr[:4], magic[:]) {
		return 0, nil, ErrBadMagic
	}
	kind := Kind(hdr[4])
	n := binary.LittleEndian.Uint64(hdr[5:])
	if n > uint64(max) {
		return 0, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return 0, nil, fmt.Errorf("wire: truncated frame payload: %w", io.ErrUnexpectedEOF)
		}
		// not a truncation: surface the real transport error
		return 0, nil, fmt.Errorf("wire: read frame payload: %w", err)
	}
	return kind, payload, nil
}

// sliceCap bounds a pre-allocation driven by a decoded element count:
// each element occupies at least minBytes of the remaining encoded
// input, so a hostile count cannot reserve more memory than the bytes
// actually present can back. The count itself is still validated by the
// callers' per-element reads.
func sliceCap(count uint64, remaining, minBytes int) int {
	max := uint64(remaining / minBytes)
	if count < max {
		max = count
	}
	return int(max)
}

// --- planes ---

// WritePlane frames one dense or sparse plane.
func WritePlane(w io.Writer, pl core.Plane) error {
	switch {
	case pl.Dense != nil:
		return WriteFrame(w, KindDense, array.MarshalDense(pl.Dense))
	case pl.Sparse != nil:
		return WriteFrame(w, KindSparse, array.MarshalSparse(pl.Sparse))
	default:
		return errors.New("wire: cannot frame an empty plane")
	}
}

// ReadPlane reads a KindDense or KindSparse frame back into a plane.
func ReadPlane(r io.Reader, max int64) (core.Plane, error) {
	kind, payload, err := ReadFrame(r, max)
	if err != nil {
		return core.Plane{}, err
	}
	switch kind {
	case KindDense:
		d, err := array.UnmarshalDense(payload)
		if err != nil {
			return core.Plane{}, err
		}
		return core.Plane{Dense: d}, nil
	case KindSparse:
		sp, err := array.UnmarshalSparse(payload)
		if err != nil {
			return core.Plane{}, err
		}
		return core.Plane{Sparse: sp}, nil
	default:
		return core.Plane{}, fmt.Errorf("wire: expected a plane frame, got kind %d", kind)
	}
}

// WriteDense frames one dense array (the SelectMulti result shape).
func WriteDense(w io.Writer, d *array.Dense) error {
	return WriteFrame(w, KindDense, array.MarshalDense(d))
}

// WriteDenseNoCopy frames one dense array without materializing the
// payload: the frame header and the dense blob header share one small
// buffer, and the cell bytes go out as a second I/O vector via
// net.Buffers — writev(2) on a TCP connection — so a cached (possibly
// mmap-backed) plane reaches the socket with no frame-sized copy. The
// caller must not mutate d until the write returns. Returns the number
// of cell bytes written zero-copy.
func WriteDenseNoCopy(w io.Writer, d *array.Dense) (int64, error) {
	data := d.Bytes()
	hdr := make([]byte, headerLen, headerLen+16)
	hdr = array.AppendDenseHeader(hdr, d)
	copy(hdr[:4], magic[:])
	hdr[4] = byte(KindDense)
	binary.LittleEndian.PutUint64(hdr[5:], uint64(len(hdr)-headerLen+len(data)))
	bufs := net.Buffers{hdr, data}
	if _, err := bufs.WriteTo(w); err != nil {
		return 0, fmt.Errorf("wire: write dense frame: %w", err)
	}
	return int64(len(data)), nil
}

// WritePlaneNoCopy is WritePlane with the dense case routed through
// WriteDenseNoCopy. Sparse planes have no flat cell buffer to hand to
// writev and fall back to the copying path (returning 0).
func WritePlaneNoCopy(w io.Writer, pl core.Plane) (int64, error) {
	switch {
	case pl.Dense != nil:
		return WriteDenseNoCopy(w, pl.Dense)
	case pl.Sparse != nil:
		return 0, WriteFrame(w, KindSparse, array.MarshalSparse(pl.Sparse))
	default:
		return 0, errors.New("wire: cannot frame an empty plane")
	}
}

// ReadDense reads a KindDense frame.
func ReadDense(r io.Reader, max int64) (*array.Dense, error) {
	kind, payload, err := ReadFrame(r, max)
	if err != nil {
		return nil, err
	}
	if kind != KindDense {
		return nil, fmt.Errorf("wire: expected a dense frame, got kind %d", kind)
	}
	return array.UnmarshalDense(payload)
}

// --- sparse sets ---

// WriteSparseSet frames an ordered set of sparse arrays: a uvarint
// count, then per element a uvarint length and a MarshalSparse blob.
func WriteSparseSet(w io.Writer, set []*array.Sparse) error {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(set)))
	for _, sp := range set {
		blob := array.MarshalSparse(sp)
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	return WriteFrame(w, KindSparseSet, buf)
}

// ReadSparseSet reads a KindSparseSet frame.
func ReadSparseSet(r io.Reader, max int64) ([]*array.Sparse, error) {
	kind, payload, err := ReadFrame(r, max)
	if err != nil {
		return nil, err
	}
	if kind != KindSparseSet {
		return nil, fmt.Errorf("wire: expected a sparse-set frame, got kind %d", kind)
	}
	count, pos, err := readUvarint(payload, 0)
	if err != nil {
		return nil, err
	}
	if count > uint64(len(payload)) {
		return nil, fmt.Errorf("wire: sparse set claims %d elements in a %d-byte frame", count, len(payload))
	}
	set := make([]*array.Sparse, 0, sliceCap(count, len(payload)-pos, 5))
	for i := uint64(0); i < count; i++ {
		n, next, err := readUvarint(payload, pos)
		if err != nil {
			return nil, err
		}
		pos = next
		if uint64(len(payload)-pos) < n {
			return nil, fmt.Errorf("wire: truncated sparse set element %d", i)
		}
		sp, err := array.UnmarshalSparse(payload[pos : pos+int(n)])
		if err != nil {
			return nil, err
		}
		set = append(set, sp)
		pos += int(n)
	}
	return set, nil
}

// --- insert payloads ---

// Payload form discriminators inside a KindPayload frame.
const (
	payloadFormPlanes    = 0
	payloadFormDeltaList = 1
)

// EncodePayload flattens an insert payload into a KindPayload frame
// body. Layout: one form byte, then either
//
//	planes form:     uvarint count, per plane uvarint len + array.Marshal blob
//	delta-list form: uvarint base, uvarint count, per update
//	                 uvarint len + attr bytes, uvarint ncoords,
//	                 varint coords..., varint bits
func EncodePayload(p core.Payload) ([]byte, error) {
	var buf []byte
	if p.DeltaBase > 0 {
		buf = append(buf, payloadFormDeltaList)
		buf = binary.AppendUvarint(buf, uint64(p.DeltaBase))
		buf = binary.AppendUvarint(buf, uint64(len(p.Updates)))
		for _, u := range p.Updates {
			buf = binary.AppendUvarint(buf, uint64(len(u.Attr)))
			buf = append(buf, u.Attr...)
			buf = binary.AppendUvarint(buf, uint64(len(u.Coords)))
			for _, c := range u.Coords {
				buf = binary.AppendVarint(buf, c)
			}
			buf = binary.AppendVarint(buf, u.Bits)
		}
		return buf, nil
	}
	if len(p.Planes) == 0 {
		return nil, errors.New("wire: payload has no planes and no delta base")
	}
	buf = append(buf, payloadFormPlanes)
	buf = binary.AppendUvarint(buf, uint64(len(p.Planes)))
	for i, pl := range p.Planes {
		var blob []byte
		switch {
		case pl.Dense != nil:
			blob = array.MarshalDense(pl.Dense)
		case pl.Sparse != nil:
			blob = array.MarshalSparse(pl.Sparse)
		default:
			return nil, fmt.Errorf("wire: payload plane %d is empty", i)
		}
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	return buf, nil
}

// DecodePayload parses a KindPayload frame body.
func DecodePayload(blob []byte) (core.Payload, error) {
	if len(blob) == 0 {
		return core.Payload{}, errors.New("wire: empty payload frame")
	}
	form, pos := blob[0], 1
	switch form {
	case payloadFormPlanes:
		count, next, err := readUvarint(blob, pos)
		if err != nil {
			return core.Payload{}, err
		}
		pos = next
		if count == 0 || count > uint64(len(blob)) {
			return core.Payload{}, fmt.Errorf("wire: payload claims %d planes in a %d-byte frame", count, len(blob))
		}
		p := core.Payload{Planes: make([]core.Plane, 0, sliceCap(count, len(blob)-pos, 5))}
		for i := uint64(0); i < count; i++ {
			n, next, err := readUvarint(blob, pos)
			if err != nil {
				return core.Payload{}, err
			}
			pos = next
			if uint64(len(blob)-pos) < n {
				return core.Payload{}, fmt.Errorf("wire: truncated payload plane %d", i)
			}
			a, err := array.Unmarshal(blob[pos : pos+int(n)])
			if err != nil {
				return core.Payload{}, err
			}
			pos += int(n)
			switch v := a.(type) {
			case *array.Dense:
				p.Planes = append(p.Planes, core.Plane{Dense: v})
			case *array.Sparse:
				p.Planes = append(p.Planes, core.Plane{Sparse: v})
			}
		}
		return p, nil
	case payloadFormDeltaList:
		base, next, err := readUvarint(blob, pos)
		if err != nil {
			return core.Payload{}, err
		}
		// a delta-list against version 0 is meaningless (EncodePayload
		// never produces it) and version ids are small positive ints
		if base == 0 || base > 1<<31 {
			return core.Payload{}, fmt.Errorf("wire: payload has invalid delta base %d", base)
		}
		pos = next
		count, next, err := readUvarint(blob, pos)
		if err != nil {
			return core.Payload{}, err
		}
		pos = next
		if count > uint64(len(blob)) {
			return core.Payload{}, fmt.Errorf("wire: payload claims %d updates in a %d-byte frame", count, len(blob))
		}
		p := core.Payload{DeltaBase: int(base), Updates: make([]core.CellUpdate, 0, sliceCap(count, len(blob)-pos, 3))}
		for i := uint64(0); i < count; i++ {
			alen, next, err := readUvarint(blob, pos)
			if err != nil {
				return core.Payload{}, err
			}
			pos = next
			if uint64(len(blob)-pos) < alen {
				return core.Payload{}, fmt.Errorf("wire: truncated payload update %d attr", i)
			}
			u := core.CellUpdate{Attr: string(blob[pos : pos+int(alen)])}
			pos += int(alen)
			ncoords, next, err := readUvarint(blob, pos)
			if err != nil {
				return core.Payload{}, err
			}
			pos = next
			// each coord varint is at least one byte, so a count beyond
			// the remaining input cannot be satisfied — reject before
			// allocating for it
			if ncoords > uint64(len(blob)-pos) {
				return core.Payload{}, fmt.Errorf("wire: payload update %d claims %d coords with %d bytes left", i, ncoords, len(blob)-pos)
			}
			u.Coords = make([]int64, ncoords)
			for c := range u.Coords {
				v, next, err := readVarint(blob, pos)
				if err != nil {
					return core.Payload{}, err
				}
				u.Coords[c], pos = v, next
			}
			bits, next, err := readVarint(blob, pos)
			if err != nil {
				return core.Payload{}, err
			}
			u.Bits, pos = bits, next
			p.Updates = append(p.Updates, u)
		}
		return p, nil
	default:
		return core.Payload{}, fmt.Errorf("wire: unknown payload form %d", form)
	}
}

// WritePayload frames an insert payload.
func WritePayload(w io.Writer, p core.Payload) error {
	blob, err := EncodePayload(p)
	if err != nil {
		return err
	}
	return WriteFrame(w, KindPayload, blob)
}

// ReadPayload reads a KindPayload frame back into an insert payload.
func ReadPayload(r io.Reader, max int64) (core.Payload, error) {
	kind, blob, err := ReadFrame(r, max)
	if err != nil {
		return core.Payload{}, err
	}
	if kind != KindPayload {
		return core.Payload{}, fmt.Errorf("wire: expected a payload frame, got kind %d", kind)
	}
	return DecodePayload(blob)
}

// WritePayloadBatch writes a batched-insert request body: one
// KindPayload frame per payload, back to back. Each frame is
// individually length-prefixed and size-bounded, so a batch needs no
// container framing of its own — the stream ends when the body does.
func WritePayloadBatch(w io.Writer, ps []core.Payload) error {
	if len(ps) == 0 {
		return errors.New("wire: empty payload batch")
	}
	for _, p := range ps {
		if err := WritePayload(w, p); err != nil {
			return err
		}
	}
	return nil
}

// MaxBatchPayloads bounds the number of frames ReadPayloadBatch will
// decode from one batch body, so a hostile endless stream of small
// valid frames cannot accumulate unbounded decoded payloads (each
// frame is already size-bounded individually; servers additionally
// bound the total body bytes).
const MaxBatchPayloads = 4096

// ReadPayloadBatch reads KindPayload frames until EOF. A clean EOF at a
// frame boundary ends the batch (detected with a one-byte peek, since a
// mid-header EOF must stay an error); a truncated frame, an oversized
// frame, or a foreign frame kind is an error, and an empty body is
// rejected (an empty batched insert is always a caller bug). Each frame
// is bounded by max individually and the batch by MaxBatchPayloads.
func ReadPayloadBatch(r io.Reader, max int64) ([]core.Payload, error) {
	var ps []core.Payload
	var peek [1]byte
	for {
		if _, err := io.ReadFull(r, peek[:]); err != nil {
			if errors.Is(err, io.EOF) {
				if len(ps) == 0 {
					return nil, errors.New("wire: empty payload batch")
				}
				return ps, nil
			}
			return nil, fmt.Errorf("wire: read payload batch: %w", err)
		}
		if len(ps) >= MaxBatchPayloads {
			return nil, fmt.Errorf("wire: payload batch exceeds %d frames", MaxBatchPayloads)
		}
		kind, blob, err := ReadFrame(io.MultiReader(bytes.NewReader(peek[:]), r), max)
		if err != nil {
			return nil, err
		}
		if kind != KindPayload {
			return nil, fmt.Errorf("wire: expected a payload frame, got kind %d", kind)
		}
		p, err := DecodePayload(blob)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
}

// --- multi-array atomic batches ---

// MultiPart names one array's slice of a multi-array batch body: the
// next Count payload frames after the header belong to array Name.
type MultiPart struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// WriteMultiBatch writes a multi-array atomic-insert request body: one
// KindMultiHeader frame holding the JSON part table, then each part's
// payloads as back-to-back KindPayload frames, in part order. The
// server commits the whole body under one manifest commit point
// (Store.InsertMulti).
func WriteMultiBatch(w io.Writer, batches []core.MultiInsert) error {
	if len(batches) == 0 {
		return errors.New("wire: empty multi batch")
	}
	parts := make([]MultiPart, len(batches))
	for i, b := range batches {
		if len(b.Payloads) == 0 {
			return fmt.Errorf("wire: multi batch part %q has no payloads", b.Array)
		}
		parts[i] = MultiPart{Name: b.Array, Count: len(b.Payloads)}
	}
	hdr, err := json.Marshal(parts)
	if err != nil {
		return err
	}
	if err := WriteFrame(w, KindMultiHeader, hdr); err != nil {
		return err
	}
	for _, b := range batches {
		for _, p := range b.Payloads {
			if err := WritePayload(w, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadMultiBatch reads a multi-array batch body back: the header's
// part table, then exactly the payload frames it promises, rejecting
// duplicate or empty part names, zero counts, more than
// MaxBatchPayloads total payloads, and trailing bytes after the last
// frame. Each frame is bounded by max individually.
func ReadMultiBatch(r io.Reader, max int64) ([]core.MultiInsert, error) {
	kind, hdr, err := ReadFrame(r, max)
	if err != nil {
		return nil, err
	}
	if kind != KindMultiHeader {
		return nil, fmt.Errorf("wire: expected a multi-batch header frame, got kind %d", kind)
	}
	var parts []MultiPart
	if err := json.Unmarshal(hdr, &parts); err != nil {
		return nil, fmt.Errorf("wire: bad multi-batch header: %w", err)
	}
	if len(parts) == 0 {
		return nil, errors.New("wire: multi batch has no parts")
	}
	seen := make(map[string]bool, len(parts))
	total := 0
	for _, pt := range parts {
		if pt.Name == "" {
			return nil, errors.New("wire: multi batch part with an empty array name")
		}
		if seen[pt.Name] {
			return nil, fmt.Errorf("wire: multi batch names array %q twice", pt.Name)
		}
		seen[pt.Name] = true
		if pt.Count <= 0 {
			return nil, fmt.Errorf("wire: multi batch part %q claims %d payloads", pt.Name, pt.Count)
		}
		total += pt.Count
		if total > MaxBatchPayloads {
			return nil, fmt.Errorf("wire: multi batch exceeds %d payloads", MaxBatchPayloads)
		}
	}
	out := make([]core.MultiInsert, len(parts))
	for i, pt := range parts {
		ps := make([]core.Payload, pt.Count)
		for j := range ps {
			p, err := ReadPayload(r, max)
			if err != nil {
				return nil, fmt.Errorf("wire: multi batch part %q payload %d: %w", pt.Name, j, err)
			}
			ps[j] = p
		}
		out[i] = core.MultiInsert{Array: pt.Name, Payloads: ps}
	}
	var peek [1]byte
	if _, err := io.ReadFull(r, peek[:]); !errors.Is(err, io.EOF) {
		return nil, errors.New("wire: trailing bytes after multi batch")
	}
	return out, nil
}

func readUvarint(blob []byte, pos int) (uint64, int, error) {
	v, n := binary.Uvarint(blob[pos:])
	if n <= 0 {
		return 0, 0, errors.New("wire: truncated varint")
	}
	return v, pos + n, nil
}

func readVarint(blob []byte, pos int) (int64, int, error) {
	v, n := binary.Varint(blob[pos:])
	if n <= 0 {
		return 0, 0, errors.New("wire: truncated varint")
	}
	return v, pos + n, nil
}
