package aql

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	opts := core.DefaultOptions()
	opts.ChunkBytes = 1 << 12
	s, err := core.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(s)
}

func mustExec(t *testing.T, e *Engine, stmt string) Result {
	t.Helper()
	r, err := e.Execute(stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return r
}

// writeArrayFile marshals a dense array for LOAD.
func writeArrayFile(t *testing.T, dir string, name string, vals []int64) string {
	t.Helper()
	d := array.MustDense(array.Int32, []int64{3, 3})
	for i, v := range vals {
		d.SetBits(int64(i), v)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, array.MarshalDense(d), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAppendixAWorkflow(t *testing.T) {
	// replays the Appendix A example session end to end
	e := testEngine(t)
	dir := t.TempDir()
	mustExec(t, e, "CREATE UPDATABLE ARRAY Example ( A::INTEGER ) [ I=0:2, J=0:2 ];")

	v1 := writeArrayFile(t, dir, "v1.dat", []int64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	v2 := writeArrayFile(t, dir, "v2.dat", []int64{2, 4, 6, 8, 10, 12, 14, 16, 18})
	v3 := writeArrayFile(t, dir, "v3.dat", []int64{3, 6, 9, 12, 15, 18, 21, 24, 27})

	mustExec(t, e, "LOAD Example FROM '"+v1+"';")
	r := mustExec(t, e, "VERSIONS(Example);")
	if r.String() != "[('Example@1')]" {
		t.Fatalf("VERSIONS after first load: %s", r.String())
	}
	mustExec(t, e, "LOAD Example FROM '"+v2+"';")
	mustExec(t, e, "LOAD Example FROM '"+v3+"';")
	r = mustExec(t, e, "VERSIONS(Example)")
	if r.String() != "[('Example@1'),('Example@2'),('Example@3')]" {
		t.Fatalf("VERSIONS: %s", r.String())
	}

	// SELECT * FROM Example@1
	r = mustExec(t, e, "SELECT * FROM Example@1;")
	want := "[\n[(1),(2),(3)]\n[(4),(5),(6)]\n[(7),(8),(9)]\n]"
	if r.String() != want {
		t.Fatalf("select v1:\n%s\nwant:\n%s", r.String(), want)
	}

	// SELECT * FROM Example@* returns a 3D stack
	r = mustExec(t, e, "SELECT * FROM Example@*;")
	if r.Dense == nil || r.Dense.NDim() != 3 || r.Dense.Shape()[0] != 3 {
		t.Fatalf("@* shape: %v", r.Dense.Shape())
	}
	if r.Dense.BitsAt([]int64{2, 2, 2}) != 27 {
		t.Fatal("@* content wrong")
	}

	// the appendix SUBSAMPLE example: coordinates 0-1 on X, 1-2 on Y,
	// versions 2-3 (positions 1-2 on the time axis per its output)
	r = mustExec(t, e, "SELECT * FROM SUBSAMPLE (Example@*, 0, 1, 1, 2, 1, 2);")
	if r.Dense == nil || r.Dense.NDim() != 3 {
		t.Fatal("SUBSAMPLE must return a 3D array")
	}
	sh := r.Dense.Shape()
	if sh[0] != 2 || sh[1] != 2 || sh[2] != 2 {
		t.Fatalf("SUBSAMPLE shape %v, want [2 2 2]", sh)
	}
	// first slab = version 2's region: rows 0-1, cols 1-2 of v2
	if r.Dense.BitsAt([]int64{0, 0, 0}) != 4 || r.Dense.BitsAt([]int64{0, 1, 1}) != 12 {
		t.Fatalf("SUBSAMPLE slab 0 wrong")
	}
	if r.Dense.BitsAt([]int64{1, 0, 0}) != 6 || r.Dense.BitsAt([]int64{1, 1, 1}) != 18 {
		t.Fatalf("SUBSAMPLE slab 1 wrong")
	}

	// BRANCH(Example@2 NewBranch); LOAD into the branch
	mustExec(t, e, "BRANCH(Example@2 NewBranch);")
	r = mustExec(t, e, "SELECT * FROM NewBranch@1;")
	if r.Dense.BitsAt([]int64{0, 0}) != 2 {
		t.Fatal("branch content wrong")
	}
	mustExec(t, e, "LOAD NewBranch FROM '"+v1+"';")
	r = mustExec(t, e, "VERSIONS(NewBranch);")
	if !strings.Contains(r.String(), "NewBranch@2") {
		t.Fatalf("branch versions: %s", r.String())
	}
	// source unaffected
	r = mustExec(t, e, "VERSIONS(Example);")
	if strings.Contains(r.String(), "@4") {
		t.Fatal("branch polluted source array")
	}
}

func TestSelectByDate(t *testing.T) {
	e := testEngine(t)
	dir := t.TempDir()
	mustExec(t, e, "CREATE UPDATABLE ARRAY D ( A::INTEGER ) [ I=0:2, J=0:2 ]")
	f := writeArrayFile(t, dir, "v.dat", []int64{1, 1, 1, 1, 1, 1, 1, 1, 1})
	mustExec(t, e, "LOAD D FROM '"+f+"'")
	// versions are committed "now"; selecting today's date must find it
	r, err := e.Execute("SELECT * FROM D@'1-5-2011';")
	if err == nil {
		_ = r
		t.Fatal("date before history should fail")
	}
}

func TestSubsampleSingleVersion(t *testing.T) {
	e := testEngine(t)
	dir := t.TempDir()
	mustExec(t, e, "CREATE UPDATABLE ARRAY S ( A::INTEGER ) [ I=0:2, J=0:2 ]")
	f := writeArrayFile(t, dir, "v.dat", []int64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	mustExec(t, e, "LOAD S FROM '"+f+"'")
	r := mustExec(t, e, "SELECT * FROM SUBSAMPLE(S@1, 1, 2, 0, 1)")
	if r.Dense == nil || r.Dense.NDim() != 2 {
		t.Fatal("2D subsample wrong")
	}
	if r.Dense.BitsAt([]int64{0, 0}) != 4 || r.Dense.BitsAt([]int64{1, 1}) != 8 {
		t.Fatalf("subsample content wrong: %s", r.String())
	}
}

func TestMultiAttributeCreate(t *testing.T) {
	e := testEngine(t)
	mustExec(t, e, "CREATE UPDATEABLE ARRAY M ( A::INTEGER, B::DOUBLE ) [I=0:2, J=0:2, K=1:15]")
	sch, err := e.store.Schema("M")
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Attrs) != 2 || sch.Attrs[1].Type != array.Float64 {
		t.Fatalf("schema attrs: %+v", sch.Attrs)
	}
	if len(sch.Dims) != 3 || sch.Dims[2].Size() != 15 {
		t.Fatalf("schema dims: %+v", sch.Dims)
	}
}

func TestDropAndList(t *testing.T) {
	e := testEngine(t)
	mustExec(t, e, "CREATE UPDATABLE ARRAY A1 ( A::INTEGER ) [I=0:1]")
	mustExec(t, e, "CREATE UPDATABLE ARRAY A2 ( A::INTEGER ) [I=0:1]")
	r := mustExec(t, e, "LIST ARRAYS")
	if len(r.Names) != 2 {
		t.Fatalf("list: %v", r.Names)
	}
	mustExec(t, e, "DROP ARRAY A1")
	r = mustExec(t, e, "LIST ARRAYS")
	if len(r.Names) != 1 || r.Names[0] != "A2" {
		t.Fatalf("list after drop: %v", r.Names)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROB Example",
		"CREATE ARRAY ( A::INTEGER ) [I=0:2]",
		"CREATE ARRAY X ( A::BOGUS ) [I=0:2]",
		"CREATE ARRAY X ( A::INTEGER ) [I=2:0]",
		"SELECT FROM X@1",
		"SELECT * FROM X@",
		"SELECT * FROM X@0",
		"SELECT * FROM X@'not-a-date'",
		"LOAD X FROM file",
		"VERSIONS X",
		"BRANCH(X@1)",
		"SELECT * FROM X@1 garbage",
		"SELECT * FROM X@1; extra",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("parse accepted %q", src)
		}
	}
}

func TestExecErrors(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Execute("SELECT * FROM Missing@1"); err == nil {
		t.Error("select on missing array accepted")
	}
	if _, err := e.Execute("LOAD Missing FROM '/nonexistent'"); err == nil {
		t.Error("load of missing file accepted")
	}
	mustExec(t, e, "CREATE UPDATABLE ARRAY E ( A::INTEGER ) [I=0:2, J=0:2]")
	if _, err := e.Execute("SELECT * FROM SUBSAMPLE(E@*, 0, 1)"); err == nil {
		t.Error("wrong range count accepted")
	}
	if _, err := e.Execute("CREATE UPDATABLE ARRAY E ( A::INTEGER ) [I=0:2]"); err == nil {
		t.Error("duplicate create accepted")
	}
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT * FROM X@'1-5-2011';")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokPunct, tokIdent, tokIdent, tokPunct, tokString, tokPunct, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("%d tokens", len(toks))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d kind %d, want %d", i, toks[i].kind, k)
		}
	}
	if _, err := lex("bad $ char"); err == nil {
		t.Error("lexer accepted $")
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("lexer accepted unterminated string")
	}
}

func TestMergeStatement(t *testing.T) {
	e := testEngine(t)
	dir := t.TempDir()
	mustExec(t, e, "CREATE UPDATABLE ARRAY M1 ( A::INTEGER ) [I=0:2, J=0:2]")
	mustExec(t, e, "CREATE UPDATABLE ARRAY M2 ( A::INTEGER ) [I=0:2, J=0:2]")
	f1 := writeArrayFile(t, dir, "m1.dat", []int64{1, 1, 1, 1, 1, 1, 1, 1, 1})
	f2 := writeArrayFile(t, dir, "m2.dat", []int64{2, 2, 2, 2, 2, 2, 2, 2, 2})
	mustExec(t, e, "LOAD M1 FROM '"+f1+"'")
	mustExec(t, e, "LOAD M2 FROM '"+f2+"'")
	mustExec(t, e, "MERGE(M1@1, M2@1 Combined);")
	r := mustExec(t, e, "VERSIONS(Combined)")
	if len(r.Names) != 2 {
		t.Fatalf("merged versions: %v", r.Names)
	}
	r = mustExec(t, e, "SELECT * FROM Combined@2")
	if r.Dense.Bits(0) != 2 {
		t.Fatal("merged content wrong")
	}
	if _, err := e.Execute("MERGE(M1@1 OnlyOne)"); err == nil {
		t.Error("single-parent merge accepted")
	}
	if _, err := e.Execute("MERGE(M1@1, M2@1)"); err == nil {
		t.Error("merge without new name accepted")
	}
}

func TestDeleteVersionStatement(t *testing.T) {
	e := testEngine(t)
	dir := t.TempDir()
	mustExec(t, e, "CREATE UPDATABLE ARRAY DV ( A::INTEGER ) [I=0:2, J=0:2]")
	f := writeArrayFile(t, dir, "v.dat", []int64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	mustExec(t, e, "LOAD DV FROM '"+f+"'")
	mustExec(t, e, "LOAD DV FROM '"+f+"'")
	mustExec(t, e, "DELETE VERSION DV@1;")
	r := mustExec(t, e, "VERSIONS(DV)")
	if len(r.Names) != 1 || r.Names[0] != "DV@2" {
		t.Fatalf("versions after delete: %v", r.Names)
	}
	if _, err := e.Execute("DELETE VERSION DV@99"); err == nil {
		t.Error("delete of missing version accepted")
	}
}

func TestInfoStatement(t *testing.T) {
	e := testEngine(t)
	dir := t.TempDir()
	mustExec(t, e, "CREATE UPDATABLE ARRAY IN1 ( A::INTEGER ) [I=0:2, J=0:2]")
	f := writeArrayFile(t, dir, "v.dat", []int64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	mustExec(t, e, "LOAD IN1 FROM '"+f+"'")
	r := mustExec(t, e, "INFO(IN1)")
	if !strings.Contains(r.String(), "1 versions") {
		t.Fatalf("info output: %s", r.String())
	}
	if _, err := e.Execute("INFO(Missing)"); err == nil {
		t.Error("info of missing array accepted")
	}
}
