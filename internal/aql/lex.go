// Package aql implements the versioning surface of SciDB's query
// language described in the paper's Appendix A: CREATE UPDATABLE ARRAY,
// LOAD ... FROM, SELECT * FROM arr@version (by ID, by date, or @* for
// all versions), SUBSAMPLE over version stacks, VERSIONS(arr), and
// BRANCH(arr@v NewName). Statements execute against a core.Store.
package aql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokIdent tokenKind = iota
	tokNumber
	tokString
	tokPunct // single punctuation rune, or "::"
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of statement"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits a statement into tokens. Strings use single quotes.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("aql: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, src[i+1 : j], i})
			i = j + 1
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(src) && (isIdentRune(rune(src[j]))) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1]))):
			j := i + 1
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.' || src[j] == '-') {
				// dates like 1-5-2011 lex as one "number" token
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case c == ':' && i+1 < len(src) && src[i+1] == ':':
			toks = append(toks, token{tokPunct, "::", i})
			i += 2
		case strings.ContainsRune("()[]{},;:@*=", c):
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("aql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
