package aql

import (
	"context"
	"fmt"
	"os"
	"strings"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
)

// Engine executes AQL statements against a versioned store.
type Engine struct {
	store *core.Store
}

// NewEngine wraps a store.
func NewEngine(store *core.Store) *Engine { return &Engine{store: store} }

// Result is the outcome of one statement.
type Result struct {
	// Message is set for statements without array output (CREATE, LOAD,
	// BRANCH, DROP).
	Message string
	// Names is set for VERSIONS and LIST.
	Names []string
	// Dense / Sparse carry array output for SELECT.
	Dense  *array.Dense
	Sparse *array.Sparse
}

// Execute parses and runs one statement.
func (e *Engine) Execute(src string) (Result, error) {
	return e.ExecuteCtx(context.Background(), src)
}

// ExecuteCtx parses and runs one statement under a context, so a trace
// attached to the context records the query's pipeline stages.
func (e *Engine) ExecuteCtx(ctx context.Context, src string) (Result, error) {
	st, err := Parse(src)
	if err != nil {
		return Result{}, err
	}
	return e.RunCtx(ctx, st)
}

// Run executes a parsed statement.
func (e *Engine) Run(st Stmt) (Result, error) {
	return e.RunCtx(context.Background(), st)
}

// RunCtx executes a parsed statement under a context.
func (e *Engine) RunCtx(ctx context.Context, st Stmt) (Result, error) {
	switch s := st.(type) {
	case CreateStmt:
		if err := e.store.CreateArray(s.Schema); err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("created array %s", s.Schema.Name)}, nil
	case LoadStmt:
		return e.load(s)
	case SelectStmt:
		return e.selectStmt(ctx, s)
	case VersionsStmt:
		infos, err := e.store.Versions(s.Array)
		if err != nil {
			return Result{}, err
		}
		names := []string{} // non-nil so an empty history renders as []
		for _, vi := range infos {
			names = append(names, fmt.Sprintf("%s@%d", s.Array, vi.ID))
		}
		return Result{Names: names}, nil
	case BranchStmt:
		if err := e.store.Branch(s.Array, s.Version, s.NewName); err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("branched %s@%d as %s", s.Array, s.Version, s.NewName)}, nil
	case DropStmt:
		if err := e.store.DeleteArray(s.Array); err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("dropped array %s", s.Array)}, nil
	case ListStmt:
		return Result{Names: e.store.ListArrays()}, nil
	case MergeStmt:
		refs := make([]core.VersionRef, len(s.Parents))
		for i, pr := range s.Parents {
			refs[i] = core.VersionRef{Array: pr.Array, Version: pr.Version}
		}
		if err := e.store.Merge(s.NewName, refs); err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("merged %d versions into %s", len(refs), s.NewName)}, nil
	case DeleteVersionStmt:
		if err := e.store.DeleteVersion(s.Array, s.Version); err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("deleted %s@%d", s.Array, s.Version)}, nil
	case InfoStmt:
		info, err := e.store.Info(s.Array)
		if err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("array %s: %d versions, %d bytes on disk, %d chunks, sparse=%v",
			s.Array, info.NumVersions, info.DiskBytes, info.NumChunks, info.SparseRep)}, nil
	default:
		return Result{}, fmt.Errorf("aql: unhandled statement %T", st)
	}
}

// load reads an array blob file (array.Marshal format, as produced by
// the avgen tool) and inserts it as a new version.
func (e *Engine) load(s LoadStmt) (Result, error) {
	raw, err := os.ReadFile(s.File)
	if err != nil {
		return Result{}, fmt.Errorf("aql: load: %w", err)
	}
	v, err := array.Unmarshal(raw)
	if err != nil {
		return Result{}, fmt.Errorf("aql: load: %w", err)
	}
	var payload core.Payload
	switch a := v.(type) {
	case *array.Dense:
		payload = core.DensePayload(a)
	case *array.Sparse:
		payload = core.SparsePayload(a)
	}
	id, err := e.store.Insert(s.Array, payload)
	if err != nil {
		return Result{}, err
	}
	return Result{Message: fmt.Sprintf("loaded %s@%d", s.Array, id)}, nil
}

func (e *Engine) selectStmt(ctx context.Context, s SelectStmt) (Result, error) {
	schema, err := e.store.Schema(s.Array)
	if err != nil {
		return Result{}, err
	}
	ndim := len(schema.Dims)
	// resolve the spatial box (all Ranges entries except, for @*, the
	// final time range)
	spatial := array.BoxOf(schema.Shape())
	var timeRange *[2]int64
	if s.Ranges != nil {
		want := ndim
		if s.Version.All {
			want = ndim + 1
		}
		if len(s.Ranges) != want {
			return Result{}, fmt.Errorf("aql: SUBSAMPLE needs %d ranges for %s, got %d", want, s.Array, len(s.Ranges))
		}
		for i := 0; i < ndim; i++ {
			spatial.Lo[i] = s.Ranges[i][0]
			spatial.Hi[i] = s.Ranges[i][1] + 1 // AQL ranges are inclusive
		}
		if s.Version.All {
			tr := s.Ranges[ndim]
			timeRange = &tr
		}
	}
	switch {
	case s.Version.All:
		infos, err := e.store.Versions(s.Array)
		if err != nil {
			return Result{}, err
		}
		var ids []int
		for _, vi := range infos {
			ids = append(ids, vi.ID)
		}
		if timeRange != nil {
			// the time axis indexes the stacked dimension (0-based
			// positions in the version list, per the appendix example)
			lo, hi := timeRange[0], timeRange[1]
			if lo < 0 || hi >= int64(len(ids)) || lo > hi {
				return Result{}, fmt.Errorf("aql: time range %d:%d out of bounds (0:%d)", lo, hi, len(ids)-1)
			}
			ids = ids[lo : hi+1]
		}
		stacked, err := e.store.SelectMultiRegionCtx(ctx, s.Array, ids, spatial)
		if err != nil {
			return Result{}, err
		}
		return Result{Dense: stacked}, nil
	case s.Version.Date != nil:
		id, err := e.store.VersionAt(s.Array, *s.Version.Date)
		if err != nil {
			return Result{}, err
		}
		return e.selectOne(ctx, s.Array, id, spatial)
	default:
		return e.selectOne(ctx, s.Array, s.Version.ID, spatial)
	}
}

func (e *Engine) selectOne(ctx context.Context, name string, id int, box array.Box) (Result, error) {
	pl, err := e.store.SelectRegionAttrCtx(ctx, name, id, "", box)
	if err != nil {
		return Result{}, err
	}
	if pl.IsSparse() {
		return Result{Sparse: pl.Sparse}, nil
	}
	return Result{Dense: pl.Dense}, nil
}

// String renders a result in the appendix's nested-bracket style, e.g.
//
//	[
//	[(1),(2),(3)]
//	[(4),(5),(6)]
//	]
func (r Result) String() string {
	switch {
	case r.Dense != nil:
		var b strings.Builder
		renderDense(&b, r.Dense, make([]int64, 0, r.Dense.NDim()))
		return b.String()
	case r.Sparse != nil:
		var b strings.Builder
		fmt.Fprintf(&b, "sparse %v, %d non-default cells\n", r.Sparse.Shape(), r.Sparse.NNZ())
		count := 0
		r.Sparse.Pairs(func(flat, bits int64) {
			if count < 20 {
				fmt.Fprintf(&b, "(%d)=(%d)\n", flat, bits)
			}
			count++
		})
		if count > 20 {
			fmt.Fprintf(&b, "... %d more\n", count-20)
		}
		return b.String()
	case r.Names != nil:
		parts := make([]string, len(r.Names))
		for i, n := range r.Names {
			parts[i] = fmt.Sprintf("('%s')", n)
		}
		return "[" + strings.Join(parts, ",") + "]"
	default:
		return r.Message
	}
}

// renderDense prints the array with one bracket level per dimension.
func renderDense(b *strings.Builder, d *array.Dense, prefix []int64) {
	shape := d.Shape()
	dim := len(prefix)
	if dim == len(shape)-1 {
		// innermost: one row of cells
		b.WriteString("[")
		for i := int64(0); i < shape[dim]; i++ {
			if i > 0 {
				b.WriteString(",")
			}
			coords := append(append([]int64(nil), prefix...), i)
			v := d.BitsAt(coords)
			if d.DType().IsFloat() {
				fmt.Fprintf(b, "(%g)", array.BitsToFloat(d.DType(), v))
			} else {
				fmt.Fprintf(b, "(%d)", v)
			}
		}
		b.WriteString("]\n")
		return
	}
	b.WriteString("[\n")
	for i := int64(0); i < shape[dim]; i++ {
		renderDense(b, d, append(prefix, i))
	}
	b.WriteString("]")
	if dim > 0 {
		b.WriteString("\n")
	}
}
