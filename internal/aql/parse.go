package aql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"arrayvers/internal/array"
)

// Stmt is a parsed AQL statement.
type Stmt interface{ stmt() }

// CreateStmt is CREATE [UPDATABLE] ARRAY Name ( A::TYPE, ... ) [ I=0:2, ... ].
type CreateStmt struct {
	Schema array.Schema
}

// LoadStmt is LOAD Name FROM 'file'.
type LoadStmt struct {
	Array string
	File  string
}

// VersionSel addresses versions in a SELECT: a numeric ID, a date, or
// all versions (@*).
type VersionSel struct {
	All  bool
	Date *time.Time
	ID   int
}

// SelectStmt is SELECT * FROM Name@sel, optionally wrapped in
// SUBSAMPLE(Name@sel, lo, hi, lo, hi, ...).
type SelectStmt struct {
	Array   string
	Version VersionSel
	// Ranges holds inclusive (lo, hi) pairs per output dimension when
	// the select is SUBSAMPLE'd; nil means the whole array.
	Ranges [][2]int64
}

// VersionsStmt is VERSIONS(Name).
type VersionsStmt struct {
	Array string
}

// BranchStmt is BRANCH(Name@v NewName).
type BranchStmt struct {
	Array   string
	Version int
	NewName string
}

// DropStmt is DROP ARRAY Name.
type DropStmt struct {
	Array string
}

// MergeStmt is MERGE(A@1, B@2, ... NewName): combine two or more parent
// versions into a new array whose version sequence is the parents in
// order (§II-A).
type MergeStmt struct {
	Parents []VersionedRef
	NewName string
}

// VersionedRef addresses one version of one array.
type VersionedRef struct {
	Array   string
	Version int
}

// DeleteVersionStmt is DELETE VERSION Name@v.
type DeleteVersionStmt struct {
	Array   string
	Version int
}

// InfoStmt is INFO(Name).
type InfoStmt struct {
	Array string
}

// ListStmt is LIST ARRAYS.
type ListStmt struct{}

func (CreateStmt) stmt()        {}
func (LoadStmt) stmt()          {}
func (SelectStmt) stmt()        {}
func (VersionsStmt) stmt()      {}
func (BranchStmt) stmt()        {}
func (DropStmt) stmt()          {}
func (ListStmt) stmt()          {}
func (MergeStmt) stmt()         {}
func (DeleteVersionStmt) stmt() {}
func (InfoStmt) stmt()          {}

type parser struct {
	toks []token
	pos  int
}

// Parse parses one AQL statement (a trailing semicolon is optional).
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("aql: unexpected %v after statement", p.peek())
	}
	return st, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) accept(s string) bool {
	t := p.peek()
	if (t.kind == tokPunct || t.kind == tokIdent) && strings.EqualFold(t.text, s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.accept(s) {
		return fmt.Errorf("aql: expected %q, found %v", s, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("aql: expected identifier, found %v", t)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) integer() (int64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("aql: expected number, found %v", t)
	}
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("aql: bad number %q", t.text)
	}
	p.pos++
	return v, nil
}

func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("aql: expected statement keyword, found %v", t)
	}
	switch strings.ToUpper(t.text) {
	case "CREATE":
		return p.create()
	case "LOAD":
		return p.load()
	case "SELECT":
		return p.selectStmt()
	case "VERSIONS":
		return p.versions()
	case "BRANCH":
		return p.branch()
	case "DROP":
		return p.drop()
	case "MERGE":
		return p.merge()
	case "DELETE":
		return p.deleteVersion()
	case "INFO":
		return p.info()
	case "LIST":
		p.next()
		p.accept("ARRAYS")
		return ListStmt{}, nil
	default:
		return nil, fmt.Errorf("aql: unknown statement %q", t.text)
	}
}

// CREATE [UPDATABLE|UPDATEABLE] ARRAY Name ( A::INTEGER, B::DOUBLE )
// [ I=0:2, J=0:2 ]
func (p *parser) create() (Stmt, error) {
	p.next() // CREATE
	if !p.accept("UPDATABLE") {
		p.accept("UPDATEABLE") // the paper uses both spellings
	}
	if err := p.expect("ARRAY"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	schema := array.Schema{Name: name}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("::"); err != nil {
			return nil, err
		}
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		dt, err := array.ParseDataType(strings.ToLower(typ))
		if err != nil {
			return nil, err
		}
		schema.Attrs = append(schema.Attrs, array.Attribute{Name: attr, Type: dt})
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("["); err != nil {
		return nil, err
	}
	for {
		dim, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		lo, hi, err := p.dimRange()
		if err != nil {
			return nil, err
		}
		schema.Dims = append(schema.Dims, array.Dimension{Name: dim, Lo: lo, Hi: hi})
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect("]"); err != nil {
		return nil, err
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return CreateStmt{Schema: schema}, nil
}

// dimRange parses lo:hi. The lexer may merge "0:2" digits with '-' signs
// but ':' always splits, so this is lo ':' hi.
func (p *parser) dimRange() (int64, int64, error) {
	lo, err := p.integer()
	if err != nil {
		return 0, 0, err
	}
	if err := p.expect(":"); err != nil {
		return 0, 0, err
	}
	hi, err := p.integer()
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

func (p *parser) load() (Stmt, error) {
	p.next() // LOAD
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokString {
		return nil, fmt.Errorf("aql: expected file string, found %v", t)
	}
	p.pos++
	return LoadStmt{Array: name, File: t.text}, nil
}

// SELECT * FROM Example@2 | Example@'1-5-2011' | Example@* |
// SUBSAMPLE(Example@*, 0, 1, 1, 2, 2, 3)
func (p *parser) selectStmt() (Stmt, error) {
	p.next() // SELECT
	if err := p.expect("*"); err != nil {
		return nil, err
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	if p.accept("SUBSAMPLE") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		st, err := p.versionedArray()
		if err != nil {
			return nil, err
		}
		for p.accept(",") {
			lo, err := p.integer()
			if err != nil {
				return nil, err
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
			hi, err := p.integer()
			if err != nil {
				return nil, err
			}
			st.Ranges = append(st.Ranges, [2]int64{lo, hi})
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return st, nil
	}
	return p.versionedArray()
}

// versionedArray parses Name@<ver> where <ver> is a number, a quoted
// date, or '*'.
func (p *parser) versionedArray() (SelectStmt, error) {
	name, err := p.ident()
	if err != nil {
		return SelectStmt{}, err
	}
	if err := p.expect("@"); err != nil {
		return SelectStmt{}, err
	}
	t := p.peek()
	switch {
	case t.kind == tokPunct && t.text == "*":
		p.pos++
		return SelectStmt{Array: name, Version: VersionSel{All: true}}, nil
	case t.kind == tokString:
		p.pos++
		// the appendix selects by date as Example@'1-5-2011' (M-D-YYYY)
		d, err := time.Parse("1-2-2006", t.text)
		if err != nil {
			return SelectStmt{}, fmt.Errorf("aql: bad date %q (want M-D-YYYY)", t.text)
		}
		// a date selects the newest version of that calendar day
		endOfDay := d.AddDate(0, 0, 1).Add(-time.Nanosecond)
		return SelectStmt{Array: name, Version: VersionSel{Date: &endOfDay}}, nil
	case t.kind == tokNumber:
		v, err := p.integer()
		if err != nil {
			return SelectStmt{}, err
		}
		if v <= 0 {
			return SelectStmt{}, fmt.Errorf("aql: version numbers start at 1")
		}
		return SelectStmt{Array: name, Version: VersionSel{ID: int(v)}}, nil
	default:
		return SelectStmt{}, fmt.Errorf("aql: expected version id, date, or *, found %v", t)
	}
}

func (p *parser) versions() (Stmt, error) {
	p.next() // VERSIONS
	if err := p.expect("("); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return VersionsStmt{Array: name}, nil
}

// BRANCH(Example@2 NewBranch)
func (p *parser) branch() (Stmt, error) {
	p.next() // BRANCH
	if err := p.expect("("); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("@"); err != nil {
		return nil, err
	}
	v, err := p.integer()
	if err != nil {
		return nil, err
	}
	newName, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return BranchStmt{Array: name, Version: int(v), NewName: newName}, nil
}

// MERGE(A@1, B@2 NewName)
func (p *parser) merge() (Stmt, error) {
	p.next() // MERGE
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var st MergeStmt
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if !p.accept("@") {
			// final identifier without @version is the new array name
			st.NewName = name
			break
		}
		v, err := p.integer()
		if err != nil {
			return nil, err
		}
		st.Parents = append(st.Parents, VersionedRef{Array: name, Version: int(v)})
		p.accept(",")
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if len(st.Parents) < 2 {
		return nil, fmt.Errorf("aql: MERGE needs at least two parent versions")
	}
	if st.NewName == "" {
		return nil, fmt.Errorf("aql: MERGE needs a new array name")
	}
	return st, nil
}

// DELETE VERSION Name@v
func (p *parser) deleteVersion() (Stmt, error) {
	p.next() // DELETE
	if err := p.expect("VERSION"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("@"); err != nil {
		return nil, err
	}
	v, err := p.integer()
	if err != nil {
		return nil, err
	}
	return DeleteVersionStmt{Array: name, Version: int(v)}, nil
}

// INFO(Name)
func (p *parser) info() (Stmt, error) {
	p.next() // INFO
	if err := p.expect("("); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return InfoStmt{Array: name}, nil
}

func (p *parser) drop() (Stmt, error) {
	p.next() // DROP
	if err := p.expect("ARRAY"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return DropStmt{Array: name}, nil
}
