// Command avql is an interactive AQL shell (Appendix A) over a versioned
// array store.
//
// Usage:
//
//	avql -store DIR            # interactive REPL
//	echo "VERSIONS(A);" | avql -store DIR
//
// Supported statements: CREATE UPDATABLE ARRAY, LOAD ... FROM 'file',
// SELECT * FROM arr@N | arr@'M-D-YYYY' | arr@*, SUBSAMPLE, VERSIONS(arr),
// BRANCH(arr@N NewName), DROP ARRAY, LIST ARRAYS.
//
// -trace runs every statement under a query trace and prints its
// per-stage breakdown (snapshot, cache, read, decode, delta,
// materialize — EXPLAIN ANALYZE for AQL) to stderr after the result.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"arrayvers"
	"arrayvers/internal/cliutil"
)

func main() {
	storeDir := flag.String("store", "", "store directory (required)")
	cacheBytes := flag.Int64("cache-bytes", 0, "decoded-chunk cache budget in bytes (0 disables)")
	parallelism := flag.Int("parallelism", 0, "hot-path worker pool size (0 = GOMAXPROCS, 1 = serial)")
	durable := flag.Bool("durable", false, "fsync commits and run crash recovery at open (do not use on a store a live avstored owns)")
	traceOn := flag.Bool("trace", false, "print each statement's per-stage trace breakdown to stderr")
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "avql: -store is required")
		os.Exit(2)
	}
	store, err := arrayvers.Open(*storeDir, cliutil.StoreOptions(*cacheBytes, *parallelism, *durable))
	if err != nil {
		fmt.Fprintf(os.Stderr, "avql: %v\n", err)
		os.Exit(1)
	}
	defer store.Close()
	stopSig := cliutil.CleanupOnSignal(func() { store.Close() })
	defer stopSig()
	engine := arrayvers.NewEngine(store)
	exec := func(stmt string) (arrayvers.AQLResult, error) {
		ctx := context.Background()
		var tr *arrayvers.Trace
		if *traceOn {
			tr = arrayvers.NewTrace("avql")
			ctx = arrayvers.TraceContext(ctx, tr)
		}
		res, err := engine.ExecuteCtx(ctx, stmt)
		if tr != nil {
			cliutil.WriteTrace(os.Stderr, tr.Finish())
		}
		return res, err
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	if interactive {
		fmt.Println("avql — AQL versioning shell (end statements with ';', 'quit' to exit)")
	}
	var pending strings.Builder
	prompt(interactive, pending.Len() > 0)
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && (trimmed == "quit" || trimmed == "exit") {
			return
		}
		pending.WriteString(line)
		pending.WriteString(" ")
		// execute once a statement terminator arrives
		if strings.Contains(line, ";") || trimmed == "" {
			stmt := strings.TrimSpace(pending.String())
			pending.Reset()
			if stmt == "" {
				prompt(interactive, false)
				continue
			}
			res, err := exec(stmt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			} else if out := res.String(); out != "" {
				fmt.Println(out)
			}
		}
		prompt(interactive, pending.Len() > 0)
	}
	// execute any trailing statement without a semicolon
	if stmt := strings.TrimSpace(pending.String()); stmt != "" {
		res, err := exec(stmt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			store.Close() // os.Exit skips the deferred cleanup
			os.Exit(1)
		}
		if out := res.String(); out != "" {
			fmt.Println(out)
		}
	}
}

func prompt(interactive, continuation bool) {
	if !interactive {
		return
	}
	if continuation {
		fmt.Print("...> ")
	} else {
		fmt.Print("aql> ")
	}
}

func isTerminal() bool {
	info, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}
