// Command avlint runs the repo's custom static analyzers (internal/lint)
// over the tree: the durability-boundary check (fsiocheck), the lock
// hierarchy check (lockorder), the commit-before-install check
// (commitpoint), the discarded-durable-error check (errsync), and the
// context-threading check (ctxcheck).
//
// Usage:
//
//	avlint [-json] [-list] [packages...]
//
// Package patterns default to ./... and accept anything `go list`
// does. Exit status is 1 when any diagnostic is reported (or a target
// package fails to type-check), 0 otherwise.
//
// Suppressions: //avlint:allow-<directive> <reason> on the flagged
// line or the line above it. The reason is mandatory — a bare
// directive does not suppress.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"arrayvers/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (file/line/col/analyzer/message)")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: avlint [-json] [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "avlint: %v\n", err)
		os.Exit(2)
	}

	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avlint: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, p := range pkgs {
		if !p.Target {
			continue
		}
		for _, e := range p.Errs {
			failed = true
			fmt.Fprintf(os.Stderr, "avlint: %s: %v\n", p.Path, e)
		}
	}

	diags := lint.Run(pkgs, lint.Analyzers())
	if *jsonOut {
		out := diags
		if out == nil {
			out = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "avlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 || failed {
		os.Exit(1)
	}
}
