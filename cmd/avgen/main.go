// Command avgen generates the synthetic dataset substitutes as array
// blob files consumable by `avstore load` and AQL's LOAD.
//
// Usage:
//
//	avgen -dataset noaa     -out DIR [-side 256] [-versions 10] [-seed 42]
//	avgen -dataset osm      -out DIR [-side 1024] [-versions 16]
//	avgen -dataset cnet     -out DIR [-dim 1000000] [-nnz 430000] [-versions 8]
//	avgen -dataset panorama -out DIR [-side 256] [-versions 24] [-scenes 4]
//	avgen -dataset periodic -out DIR [-period 2] [-versions 40] [-bytes 262144]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"arrayvers/internal/array"
	"arrayvers/internal/datasets"
)

func main() {
	dataset := flag.String("dataset", "", "noaa | osm | cnet | panorama | periodic")
	out := flag.String("out", "", "output directory (required)")
	side := flag.Int64("side", 256, "grid side for dense datasets")
	versions := flag.Int("versions", 10, "number of versions")
	seed := flag.Int64("seed", 42, "generator seed")
	dim := flag.Int64("dim", 1_000_000, "cnet matrix side")
	nnz := flag.Int("nnz", 430_000, "cnet entries per snapshot")
	scenes := flag.Int("scenes", 4, "panorama recurring scenes")
	period := flag.Int("period", 2, "periodic pattern length")
	sizeBytes := flag.Int64("bytes", 256<<10, "periodic array size in bytes")
	flag.Parse()

	if *out == "" || *dataset == "" {
		fmt.Fprintln(os.Stderr, "avgen: -dataset and -out are required")
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	write := func(i int, blob []byte) {
		path := filepath.Join(*out, fmt.Sprintf("%s-v%03d.dat", *dataset, i+1))
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Println(path)
	}

	switch *dataset {
	case "noaa":
		vs := datasets.NOAA(datasets.NOAAConfig{Side: *side, Versions: *versions, Attrs: 1, Seed: *seed})
		for i, v := range vs {
			write(i, array.MarshalDense(v[0]))
		}
	case "osm":
		vs := datasets.OSM(datasets.OSMConfig{Side: *side, Versions: *versions, Seed: *seed})
		for i, v := range vs {
			write(i, array.MarshalDense(v))
		}
	case "cnet":
		vs := datasets.ConceptNet(datasets.ConceptNetConfig{Dim: *dim, NNZ: *nnz, Versions: *versions, Seed: *seed})
		for i, v := range vs {
			write(i, array.MarshalSparse(v))
		}
	case "panorama":
		vs := datasets.Panorama(datasets.PanoramaConfig{Side: *side, Versions: *versions, Scenes: *scenes, Seed: *seed})
		for i, v := range vs {
			write(i, array.MarshalDense(v))
		}
	case "periodic":
		vs := datasets.Periodic(datasets.PeriodicConfig{Period: *period, Versions: *versions, SizeBytes: *sizeBytes, Seed: *seed})
		for i, v := range vs {
			write(i, array.MarshalDense(v))
		}
	default:
		fmt.Fprintf(os.Stderr, "avgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "avgen: %v\n", err)
	os.Exit(1)
}
