package main

import (
	"encoding/json"
	"errors"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arrayvers"
	"arrayvers/client"
	"arrayvers/internal/array"
	"arrayvers/internal/core"
	"arrayvers/internal/fsio"
	"arrayvers/internal/server"
)

// End-to-end chaos test: the full service stack (core store on a flaky
// disk, HTTP server, retrying clients) under simultaneous network and
// disk faults. A chaos RoundTripper injects delays, connection resets,
// lost acks (the request executes but the response never arrives), bad
// gateways, and truncated response bodies between 8 concurrent
// idempotent clients and the server; midway the disk "fills up"
// (FailAll ENOSPC), which must flip the store into degraded read-only
// mode (readyz 503) and, once the disk recovers, the background heal
// prober must flip it back (readyz 200) with no operator involvement.
//
// The invariants at the end:
//   - zero duplicate versions: every retried insert committed at most
//     once (idempotency keys + server-side replay);
//   - every acknowledged insert reads back byte-identical;
//   - at least one degraded -> healed transition was observed;
//   - the store is writable and verifies clean.
//
// When CHAOS_JSON names a file, the run writes a JSON summary there for
// the CI gate.

// chaosTransport injects client-visible network faults around an inner
// RoundTripper. The lost-ack flavor is the important one: the request
// reaches the server and executes, but the client sees a transport
// error — exactly the window where a naive retry duplicates an insert.
type chaosTransport struct {
	inner http.RoundTripper

	mu  sync.Mutex
	rng *rand.Rand

	lostAcks  atomic.Int64
	resets    atomic.Int64
	badGws    atomic.Int64
	truncated atomic.Int64
}

func (c *chaosTransport) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

func (c *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	r := c.roll()
	switch {
	case r < 0.05:
		// connection reset before the request is sent
		c.resets.Add(1)
		return nil, errors.New("chaos: connection reset")
	case r < 0.10:
		// the request executes server-side but the ack is lost
		resp, err := c.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		c.lostAcks.Add(1)
		return nil, errors.New("chaos: response lost")
	case r < 0.13:
		// a sick hop answers for the server
		c.badGws.Add(1)
		return &http.Response{
			StatusCode: http.StatusBadGateway,
			Status:     "502 Bad Gateway",
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:  http.Header{"Content-Type": []string{"application/json"}},
			Body:    io.NopCloser(newStringReader(`{"error":"chaos: bad gateway"}`)),
			Request: req,
		}, nil
	case r < 0.16:
		// response starts, then the connection dies mid-body
		resp, err := c.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		c.truncated.Add(1)
		resp.Body = &truncatingBody{inner: resp.Body, remaining: 3}
		return resp, nil
	case r < 0.22:
		time.Sleep(time.Duration(5+int(c.roll()*20)) * time.Millisecond)
	}
	return c.inner.RoundTrip(req)
}

func newStringReader(s string) io.Reader { return io.LimitReader(&stringReader{s: s}, int64(len(s))) }

type stringReader struct {
	s   string
	off int
}

func (r *stringReader) Read(p []byte) (int, error) {
	if r.off >= len(r.s) {
		return 0, io.EOF
	}
	n := copy(p, r.s[r.off:])
	r.off += n
	return n, nil
}

// truncatingBody yields a few bytes, then fails like a dropped
// connection.
type truncatingBody struct {
	inner     io.ReadCloser
	remaining int
}

func (t *truncatingBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, errors.New("chaos: connection dropped mid-body")
	}
	if len(p) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.inner.Read(p)
	t.remaining -= n
	return n, err
}

func (t *truncatingBody) Close() error { return t.inner.Close() }

// chaosContent builds a version whose first cell records the seed, so
// live versions can be mapped back to the logical insert that created
// them (two versions with the same seed = a duplicated retry).
func chaosContent(seed int64) *arrayvers.Dense {
	d := array.MustDense(array.Int32, []int64{16, 16})
	d.SetBits(0, seed%100000)
	for i := int64(1); i < d.NumCells(); i++ {
		d.SetBits(i, (i*13+seed*389)%100000)
	}
	return d
}

func waitStatus(t *testing.T, url string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			code := resp.StatusCode
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if code == want {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never returned %d within %s", url, want, timeout)
}

func TestChaosE2E(t *testing.T) {
	flaky := fsio.NewFlaky(fsio.OS)
	opts := core.DefaultOptions()
	opts.Durability = true
	opts.FS = flaky
	opts.ChunkBytes = 1 << 10
	opts.HealInterval = 50 * time.Millisecond // fast prober for the test
	store, err := core.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	srv, err := server.New(server.Config{
		Store:       store,
		MaxInFlight: 32,
		Logger:      log.New(io.Discard, "", 0), // thousands of chaotic requests; keep the test log readable
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	schema := arrayvers.Schema{
		Name:  "Chaos",
		Dims:  []arrayvers.Dimension{{Name: "Y", Lo: 0, Hi: 15}, {Name: "X", Lo: 0, Hi: 15}},
		Attrs: []arrayvers.Attribute{{Name: "V", Type: array.Int32}},
	}
	clean := client.New(ts.URL)
	if err := clean.CreateArray(schema); err != nil {
		t.Fatal(err)
	}

	chaos := &chaosTransport{inner: ts.Client().Transport, rng: rand.New(rand.NewSource(42))}
	retry := client.RetryPolicy{MaxAttempts: 10, BaseDelay: 20 * time.Millisecond, MaxDelay: 500 * time.Millisecond}

	var (
		mu      sync.Mutex
		acked   = map[int]int64{} // version id -> seed
		seedSrc atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
	)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cw := client.New(ts.URL,
				client.WithHTTPClient(&http.Client{Transport: chaos, Timeout: 10 * time.Second}),
				client.WithRetryPolicy(retry))
			for i := 0; !stop.Load(); i++ {
				if w%4 == 0 && i%5 == 4 {
					// a batch client in the mix: batches share one
					// idempotency key, so a replayed batch must return
					// the original id list atomically
					s1, s2 := seedSrc.Add(1), seedSrc.Add(1)
					ids, err := cw.InsertBatch("Chaos", []arrayvers.Payload{
						arrayvers.DensePayload(chaosContent(s1)),
						arrayvers.DensePayload(chaosContent(s2)),
					})
					if err == nil && len(ids) == 2 {
						mu.Lock()
						acked[ids[0]], acked[ids[1]] = s1, s2
						mu.Unlock()
					}
					continue
				}
				seed := seedSrc.Add(1)
				id, err := cw.Insert("Chaos", arrayvers.DensePayload(chaosContent(seed)))
				if err == nil {
					mu.Lock()
					acked[id] = seed
					mu.Unlock()
				}
			}
		}()
	}

	// phase 1: chaos-only traffic until a base of inserts is acked
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 16 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// phase 2: the disk fills up; the store must degrade and readyz
	// must start failing while healthz (liveness) stays green
	flaky.FailAll(fsio.ErrDiskFull)
	waitStatus(t, ts.URL+"/readyz", http.StatusServiceUnavailable, 10*time.Second)
	waitStatus(t, ts.URL+"/healthz", http.StatusOK, time.Second)
	h, err := clean.Health()
	if err != nil {
		t.Fatalf("health while degraded: %v", err)
	}
	if !h.Degraded || !h.StoreDegraded {
		t.Fatalf("health while degraded: %+v", h)
	}

	// phase 3: the disk recovers; the background heal prober must flip
	// the store back to writable with no operator action
	flaky.Heal()
	waitStatus(t, ts.URL+"/readyz", http.StatusOK, 10*time.Second)

	// phase 4: a little more healthy traffic, then stop
	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	mu.Lock()
	ackedCopy := make(map[int]int64, len(acked))
	for id, seed := range acked {
		ackedCopy[id] = seed
	}
	mu.Unlock()
	if len(ackedCopy) == 0 {
		t.Fatal("no inserts acknowledged; chaos drowned the workload")
	}

	// invariant: every acknowledged insert reads back byte-identical
	infos, err := clean.Versions("Chaos")
	if err != nil {
		t.Fatal(err)
	}
	live := map[int]bool{}
	for _, vi := range infos {
		live[vi.ID] = true
	}
	for id, seed := range ackedCopy {
		if !live[id] {
			t.Fatalf("acknowledged version %d is not live", id)
		}
		pl, err := clean.Select("Chaos", id)
		if err != nil {
			t.Fatalf("acknowledged version %d unreadable: %v", id, err)
		}
		if !pl.Dense.Equal(chaosContent(seed)) {
			t.Fatalf("acknowledged version %d corrupted", id)
		}
	}

	// invariant: zero duplicate versions — no logical insert (seed)
	// appears twice, no matter how many times the network made the
	// client retry it
	seedCount := map[int64]int{}
	duplicates := 0
	for _, vi := range infos {
		pl, err := clean.Select("Chaos", vi.ID)
		if err != nil {
			t.Fatalf("live version %d unreadable: %v", vi.ID, err)
		}
		s := pl.Dense.Bits(0)
		seedCount[s]++
		if seedCount[s] > 1 {
			duplicates++
			t.Errorf("seed %d committed %d times (duplicate insert)", s, seedCount[s])
		}
	}

	rep, err := clean.Verify("Chaos")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("post-chaos verify: %v", rep.Problems)
	}
	st, err := clean.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DegradedEntered < 1 || st.DegradedHealed < 1 {
		t.Fatalf("no degraded->healed transition observed: %+v", st)
	}
	if st.StoreDegraded != 0 || st.DegradedArrays != 0 {
		t.Fatalf("store still degraded at the end: %+v", st)
	}
	// and the store is writable again
	if _, err := clean.Insert("Chaos", arrayvers.DensePayload(chaosContent(999999))); err != nil {
		t.Fatalf("insert after chaos: %v", err)
	}

	t.Logf("chaos: %d acked, %d live, faults injected: %d lost acks, %d resets, %d 502s, %d truncations; degraded %d healed %d, writes rejected %d",
		len(ackedCopy), len(infos), chaos.lostAcks.Load(), chaos.resets.Load(), chaos.badGws.Load(),
		chaos.truncated.Load(), st.DegradedEntered, st.DegradedHealed, st.WritesRejectedDegraded)

	if path := os.Getenv("CHAOS_JSON"); path != "" {
		summary := map[string]int64{
			"acked":                    int64(len(ackedCopy)),
			"live_versions":            int64(len(infos)),
			"duplicate_versions":       int64(duplicates),
			"degraded_entered":         st.DegradedEntered,
			"degraded_healed":          st.DegradedHealed,
			"writes_rejected_degraded": st.WritesRejectedDegraded,
			"lost_acks":                chaos.lostAcks.Load(),
			"resets":                   chaos.resets.Load(),
			"bad_gateways":             chaos.badGws.Load(),
			"truncated_bodies":         chaos.truncated.Load(),
		}
		raw, _ := json.MarshalIndent(summary, "", "  ")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
}
