package main

import (
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"arrayvers"
	"arrayvers/client"
	"arrayvers/internal/array"
)

// End-to-end crash test: a real avstored process is SIGKILLed while 8
// concurrent clients are inserting, then restarted on the same store
// directory. The restarted daemon must come up (running crash recovery),
// report recovery counters over the wire, never have dropped a committed
// version, and serve every committed version byte-identical.

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "avstored")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startDaemon(t *testing.T, bin, storeDir, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-store", storeDir, "-addr", addr)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatal("daemon did not become healthy")
	return nil
}

func e2eContent(seed int64) *arrayvers.Dense {
	d := array.MustDense(array.Int32, []int64{48, 48})
	for i := int64(0); i < d.NumCells(); i++ {
		d.SetBits(i, (i*31+seed*977)%100000)
	}
	return d
}

func TestDaemonSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; skipped in -short")
	}
	bin := buildDaemon(t)
	storeDir := t.TempDir()
	addr := freeAddr(t)

	daemon := startDaemon(t, bin, storeDir, addr)
	c := client.New("http://" + addr)
	schema := arrayvers.Schema{
		Name:  "Crash",
		Dims:  []arrayvers.Dimension{{Name: "Y", Lo: 0, Hi: 47}, {Name: "X", Lo: 0, Hi: 47}},
		Attrs: []arrayvers.Attribute{{Name: "V", Type: array.Int32}},
	}
	if err := c.CreateArray(schema); err != nil {
		t.Fatal(err)
	}

	// 8 clients hammer inserts until the daemon dies under them
	var (
		mu        sync.Mutex
		committed = map[int]int64{} // version id -> content seed
		seedSrc   int64
		wg        sync.WaitGroup
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cw := client.New("http://" + addr)
			for {
				mu.Lock()
				seedSrc++
				seed := seedSrc
				mu.Unlock()
				id, err := cw.Insert("Crash", arrayvers.DensePayload(e2eContent(seed)))
				if err != nil {
					return // the daemon is gone
				}
				mu.Lock()
				committed[id] = seed
				mu.Unlock()
			}
		}()
	}
	// let traffic build up, then kill the daemon mid-write
	for i := 0; i < 200; i++ {
		mu.Lock()
		n := len(committed)
		mu.Unlock()
		if n >= 24 {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()
	wg.Wait()
	mu.Lock()
	n := len(committed)
	mu.Unlock()
	if n == 0 {
		t.Fatal("no inserts committed before the kill; nothing to test")
	}
	t.Logf("SIGKILL after %d committed inserts", n)

	// restart on the same store: recovery must bring it up clean
	daemon = startDaemon(t, bin, storeDir, addr)
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats after restart: %v", err)
	}
	if st.RecoveryDroppedVersions != 0 {
		t.Fatalf("recovery dropped %d committed versions", st.RecoveryDroppedVersions)
	}
	t.Logf("recovery: removed %d files, truncated %d tails (%d bytes)",
		st.RecoveryRemovedFiles, st.RecoveryTruncatedFiles, st.RecoveryTruncatedBytes)

	rep, err := c.Verify("Crash")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("recovered store fails verify: %v", rep.Problems)
	}
	infos, err := c.Versions("Crash")
	if err != nil {
		t.Fatal(err)
	}
	present := map[int]bool{}
	for _, vi := range infos {
		present[vi.ID] = true
	}
	// every insert acknowledged before the kill must read back exactly
	for id, seed := range committed {
		if !present[id] {
			t.Fatalf("committed version %d lost across SIGKILL", id)
		}
		pl, err := c.Select("Crash", id)
		if err != nil {
			t.Fatalf("committed version %d unreadable: %v", id, err)
		}
		if !pl.Dense.Equal(e2eContent(seed)) {
			t.Fatalf("committed version %d corrupted across SIGKILL", id)
		}
	}
	// unacknowledged ids may have committed server-side; they just have
	// to be readable (verify above already decoded them)
	if _, err := c.Insert("Crash", arrayvers.DensePayload(e2eContent(9999))); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}
