// Command avstored is the long-running network daemon over a versioned
// array store: it owns one store directory exclusively and serves the
// full store API (create/drop, all insert and select forms, versions,
// branch/merge, reorganize, verify, stats, AQL) to many concurrent
// clients over HTTP — JSON for control, binary frames for array data.
// See the client package for the Go client and DESIGN.md "Service
// layer" for the protocol.
//
// Usage:
//
//	avstored -store DIR [-addr localhost:7421]
//	         [-cache-bytes N] [-parallelism N] [-durable=true]
//	         [-max-inflight N] [-request-timeout 60s] [-max-frame-bytes N]
//	         [-autotune 0] [-autotune-min-savings 0.1] [-autotune-decay 0.5]
//	         [-log-format text|json] [-slow-query 0] [-pprof]
//
// Durability is on by default: every commit is fsynced and startup runs
// crash recovery over the store (recovery counters are exposed at
// /metrics and through /v1/stats), so a SIGKILL or power cut mid-write
// never corrupts committed versions.
//
// -autotune INTERVAL (e.g. -autotune 5m) enables the adaptive
// reorganizer: the daemon records every select's version set and, each
// interval, re-lays arrays out with the workload-aware policy when the
// projected I/O savings reach -autotune-min-savings (fraction, default
// 0.10). -autotune-decay (default 0.5) is the per-pass exponential decay
// of the recorded workload, so tuning follows recent traffic. Tuner
// rewrites ride the same crash-safe generation-commit protocol as
// explicit reorganizes; a pass can also be forced per array with
// POST /v1/arrays/{name}/tune (or `avstore tune -addr URL -name A`).
//
// Observability: every request is traced end to end — the response
// echoes (or assigns) an AV-Trace-Id header, each request is logged as
// one structured log/slog line (trace_id, route, status, duration,
// bytes; -log-format picks text or json), and the last completed
// traces with their per-stage breakdowns are served at
// GET /debug/traces (?id=<trace-id> looks one up). -slow-query DURATION
// additionally logs any request slower than that budget at warning
// level with its stage breakdown inline. Stage-level latency and byte
// histograms for the select and commit pipelines, per-array cache hit
// ratios, and Go runtime health are all part of GET /metrics. -pprof
// exposes net/http/pprof under /debug/pprof/ (off by default; the
// profiles are mux-scoped to this daemon, nothing registers globally).
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting connections, drains in-flight requests (up to the request
// timeout), then closes the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"arrayvers/internal/cliutil"
	"arrayvers/internal/core"
	"arrayvers/internal/server"
)

func main() {
	storeDir := flag.String("store", "", "store directory (required)")
	addr := flag.String("addr", "localhost:7421", "listen address")
	cacheBytes := flag.Int64("cache-bytes", core.DefaultCacheBytes, "decoded-chunk cache budget in bytes (0 disables)")
	parallelism := flag.Int("parallelism", 0, "hot-path worker pool size (0 = GOMAXPROCS, 1 = serial)")
	durability := flag.Bool("durable", true, "fsync every commit and run crash recovery at startup")
	maxInFlight := flag.Int("max-inflight", server.DefaultMaxInFlight, "concurrent request limit (excess answered 429)")
	requestTimeout := flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request handler timeout")
	maxFrameBytes := flag.Int64("max-frame-bytes", 0, "largest accepted wire frame payload (0 = 1 GiB)")
	autoTune := flag.Duration("autotune", 0, "adaptive reorganizer pass interval (0 disables the background tuner)")
	autoTuneMinSavings := flag.Float64("autotune-min-savings", 0, "fractional projected I/O savings required before the tuner re-lays an array out (0 = default 0.10)")
	autoTuneDecay := flag.Float64("autotune-decay", 0, "per-pass exponential decay of the recorded workload (0 = default 0.5)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	slowQuery := flag.Duration("slow-query", 0, "log requests slower than this with their per-stage trace breakdown (0 disables)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiles under /debug/pprof/")
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "avstored: -store is required")
		os.Exit(2)
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "avstored: -log-format must be \"text\" or \"json\", got %q\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	autotune := core.AutoTuneOptions{
		Interval:   *autoTune,
		MinSavings: *autoTuneMinSavings,
		Decay:      *autoTuneDecay,
	}
	if err := run(*storeDir, *addr, *cacheBytes, *parallelism, *durability, *maxInFlight, *requestTimeout, *maxFrameBytes, autotune, *slowQuery, *pprofOn, logger); err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}

func run(storeDir, addr string, cacheBytes int64, parallelism int, durability bool, maxInFlight int,
	requestTimeout time.Duration, maxFrameBytes int64, autotune core.AutoTuneOptions,
	slowQuery time.Duration, pprofOn bool, logger *slog.Logger) error {
	opts := cliutil.StoreOptions(cacheBytes, parallelism, durability)
	opts.AutoTune = autotune
	store, err := core.Open(storeDir, opts)
	if err != nil {
		return err
	}
	defer store.Close()
	if rec := store.Recovery(); rec != (core.RecoveryStats{}) {
		logger.Info("crash recovery finished",
			"removed_files", rec.RemovedFiles,
			"truncated_files", rec.TruncatedFiles,
			"truncated_bytes", rec.TruncatedBytes,
			"dropped_versions", rec.DroppedVersions)
	}
	if autotune.Interval > 0 {
		logger.Info("adaptive tuner running", "interval", autotune.Interval)
	}

	srv, err := server.New(server.Config{
		Store:          store,
		Log:            logger,
		MaxInFlight:    maxInFlight,
		RequestTimeout: requestTimeout,
		MaxFrameBytes:  maxFrameBytes,
		SlowQuery:      slowQuery,
	})
	if err != nil {
		return err
	}
	handler := srv.Handler()
	if pprofOn {
		// mux-scoped pprof: register the handlers explicitly instead of
		// relying on the package's DefaultServeMux side effects, so the
		// profiles exist only behind this flag
		mux := http.NewServeMux()
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving",
			"store", storeDir,
			"addr", "http://"+addr,
			"cache_bytes", cacheBytes,
			"max_inflight", maxInFlight)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// listener failed before any signal
		return err
	case <-ctx.Done():
	}
	logger.Info("signal received, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), requestTimeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("closing store")
	return store.Close()
}
