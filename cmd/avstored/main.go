// Command avstored is the long-running network daemon over a versioned
// array store: it owns one store directory exclusively and serves the
// full store API (create/drop, all insert and select forms, versions,
// branch/merge, reorganize, verify, stats, AQL) to many concurrent
// clients over HTTP — JSON for control, binary frames for array data.
// See the client package for the Go client and DESIGN.md "Service
// layer" for the protocol.
//
// Usage:
//
//	avstored -store DIR [-addr localhost:7421]
//	         [-cache-bytes N] [-parallelism N] [-durable=true]
//	         [-max-inflight N] [-request-timeout 60s] [-max-frame-bytes N]
//	         [-autotune 0] [-autotune-min-savings 0.1] [-autotune-decay 0.5]
//
// Durability is on by default: every commit is fsynced and startup runs
// crash recovery over the store (recovery counters are exposed at
// /metrics and through /v1/stats), so a SIGKILL or power cut mid-write
// never corrupts committed versions.
//
// -autotune INTERVAL (e.g. -autotune 5m) enables the adaptive
// reorganizer: the daemon records every select's version set and, each
// interval, re-lays arrays out with the workload-aware policy when the
// projected I/O savings reach -autotune-min-savings (fraction, default
// 0.10). -autotune-decay (default 0.5) is the per-pass exponential decay
// of the recorded workload, so tuning follows recent traffic. Tuner
// rewrites ride the same crash-safe generation-commit protocol as
// explicit reorganizes; a pass can also be forced per array with
// POST /v1/arrays/{name}/tune (or `avstore tune -addr URL -name A`).
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting connections, drains in-flight requests (up to the request
// timeout), then closes the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"arrayvers/internal/cliutil"
	"arrayvers/internal/core"
	"arrayvers/internal/server"
)

func main() {
	storeDir := flag.String("store", "", "store directory (required)")
	addr := flag.String("addr", "localhost:7421", "listen address")
	cacheBytes := flag.Int64("cache-bytes", core.DefaultCacheBytes, "decoded-chunk cache budget in bytes (0 disables)")
	parallelism := flag.Int("parallelism", 0, "hot-path worker pool size (0 = GOMAXPROCS, 1 = serial)")
	durability := flag.Bool("durable", true, "fsync every commit and run crash recovery at startup")
	maxInFlight := flag.Int("max-inflight", server.DefaultMaxInFlight, "concurrent request limit (excess answered 429)")
	requestTimeout := flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request handler timeout")
	maxFrameBytes := flag.Int64("max-frame-bytes", 0, "largest accepted wire frame payload (0 = 1 GiB)")
	autoTune := flag.Duration("autotune", 0, "adaptive reorganizer pass interval (0 disables the background tuner)")
	autoTuneMinSavings := flag.Float64("autotune-min-savings", 0, "fractional projected I/O savings required before the tuner re-lays an array out (0 = default 0.10)")
	autoTuneDecay := flag.Float64("autotune-decay", 0, "per-pass exponential decay of the recorded workload (0 = default 0.5)")
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "avstored: -store is required")
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "avstored: ", log.LstdFlags|log.Lmsgprefix)
	autotune := core.AutoTuneOptions{
		Interval:   *autoTune,
		MinSavings: *autoTuneMinSavings,
		Decay:      *autoTuneDecay,
	}
	if err := run(*storeDir, *addr, *cacheBytes, *parallelism, *durability, *maxInFlight, *requestTimeout, *maxFrameBytes, autotune, logger); err != nil {
		logger.Fatal(err)
	}
}

func run(storeDir, addr string, cacheBytes int64, parallelism int, durability bool, maxInFlight int,
	requestTimeout time.Duration, maxFrameBytes int64, autotune core.AutoTuneOptions, logger *log.Logger) error {
	opts := cliutil.StoreOptions(cacheBytes, parallelism, durability)
	opts.AutoTune = autotune
	store, err := core.Open(storeDir, opts)
	if err != nil {
		return err
	}
	defer store.Close()
	if rec := store.Recovery(); rec != (core.RecoveryStats{}) {
		logger.Printf("crash recovery: removed %d stale files, truncated %d torn tails (%d bytes), dropped %d unreadable versions",
			rec.RemovedFiles, rec.TruncatedFiles, rec.TruncatedBytes, rec.DroppedVersions)
	}
	if autotune.Interval > 0 {
		logger.Printf("adaptive tuner running every %s", autotune.Interval)
	}

	srv, err := server.New(server.Config{
		Store:          store,
		Logger:         logger,
		MaxInFlight:    maxInFlight,
		RequestTimeout: requestTimeout,
		MaxFrameBytes:  maxFrameBytes,
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("serving store %q on http://%s (cache %d bytes, %d in-flight max)",
			storeDir, addr, cacheBytes, maxInFlight)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// listener failed before any signal
		return err
	case <-ctx.Done():
	}
	logger.Printf("signal received, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), requestTimeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("closing store")
	return store.Close()
}
