// Command avbench regenerates the paper's evaluation tables (§V) on the
// synthetic dataset substitutes at laptop scale, plus this repo's own
// hot-path experiment.
//
// Usage:
//
//	avbench [-experiment all|table1|table2|table3|table4|table5|table6|table7|materialization|workload|ablations|hotpath|server|adaptive|ingest|tracing|manifest]
//	        [-scale default|quick] [-workdir DIR]
//	        [-parallelism N] [-cache-bytes N] [-json-dir DIR]
//
// Each experiment prints a table mirroring the paper's rows; see
// EXPERIMENTS.md for the paper-vs-measured comparison. The hotpath,
// server, and adaptive experiments additionally write
// BENCH_hotpath.json (ns/op, MB/s, cache hit rate), BENCH_server.json
// (remote select throughput vs client fan-out), and BENCH_adaptive.json
// (skewed-trace read amplification before/after an adaptive tuner pass)
// into -json-dir so the perf trajectory is machine-trackable across
// PRs. JSON results are committed by writing a hidden temp file and
// renaming it into place, so an interrupted run can never leave a torn
// BENCH_*.json for a CI artifact step to archive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"arrayvers/internal/bench"
	"arrayvers/internal/core"
)

func main() {
	experiment := flag.String("experiment", "all", "all, table1..table7, materialization, workload, ablations, hotpath, server, adaptive, ingest, tracing, or manifest")
	scaleName := flag.String("scale", "default", "scale preset: default or quick")
	workdir := flag.String("workdir", "", "scratch directory (default: a temp dir)")
	parallelism := flag.Int("parallelism", 0, "hot-path worker pool size (0 = GOMAXPROCS, 1 = serial)")
	cacheBytes := flag.Int64("cache-bytes", core.DefaultCacheBytes, "decoded-chunk cache budget in bytes (0 disables)")
	jsonDir := flag.String("json-dir", ".", "directory for machine-readable BENCH_*.json results (empty disables)")
	flag.Parse()

	var sc bench.Scale
	switch *scaleName {
	case "default":
		sc = bench.DefaultScale()
	case "quick":
		sc = bench.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "avbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	dir := *workdir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "avbench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	hotpath := func() {
		t, report, err := bench.HotPath(dir, sc, *parallelism, *cacheBytes)
		emit(t, err)
		if *jsonDir != "" {
			if err := writeJSON(filepath.Join(*jsonDir, "BENCH_hotpath.json"), report); err != nil {
				fatal(err)
			}
		}
	}

	serverExp := func() {
		t, results, err := bench.Server(dir, sc, *parallelism, *cacheBytes)
		emit(t, err)
		if *jsonDir != "" {
			if err := writeJSON(filepath.Join(*jsonDir, "BENCH_server.json"), results); err != nil {
				fatal(err)
			}
		}
	}

	adaptive := func() {
		t, results, err := bench.Adaptive(dir, sc, *parallelism)
		emit(t, err)
		if *jsonDir != "" {
			if err := writeJSON(filepath.Join(*jsonDir, "BENCH_adaptive.json"), results); err != nil {
				fatal(err)
			}
		}
	}

	ingest := func() {
		t, results, err := bench.Ingest(dir, sc, *parallelism)
		emit(t, err)
		if *jsonDir != "" {
			if err := writeJSON(filepath.Join(*jsonDir, "BENCH_ingest.json"), results); err != nil {
				fatal(err)
			}
		}
	}

	tracing := func() {
		t, results, err := bench.Tracing(dir, sc, *parallelism, *cacheBytes)
		emit(t, err)
		if *jsonDir != "" {
			if err := writeJSON(filepath.Join(*jsonDir, "BENCH_tracing.json"), results); err != nil {
				fatal(err)
			}
		}
	}

	manifest := func() {
		t, results, err := bench.Manifest(dir, sc, *parallelism)
		emit(t, err)
		if *jsonDir != "" {
			if err := writeJSON(filepath.Join(*jsonDir, "BENCH_manifest.json"), results); err != nil {
				fatal(err)
			}
		}
	}

	run := func(name string) {
		switch name {
		case "hotpath":
			hotpath()
		case "server":
			serverExp()
		case "adaptive":
			adaptive()
		case "ingest":
			ingest()
		case "tracing":
			tracing()
		case "manifest":
			manifest()
		case "table1":
			t, err := bench.Table1(sc)
			emit(t, err)
		case "table2":
			t, err := bench.Table2(sc)
			emit(t, err)
		case "table3", "table4":
			t3, t4, err := bench.Table3And4(dir, sc)
			if name == "table3" {
				emit(t3, err)
			} else {
				emit(t4, err)
			}
		case "table5":
			t, err := bench.Table5(dir, sc)
			emit(t, err)
		case "table6":
			t, err := bench.Table6(dir, sc)
			emit(t, err)
		case "table7":
			t, err := bench.Table7(dir, sc)
			emit(t, err)
		case "materialization":
			t, err := bench.Materialization(dir, sc)
			emit(t, err)
		case "workload":
			t, err := bench.WorkloadAware(dir, sc)
			emit(t, err)
		case "ablations":
			t, err := bench.Ablations(dir, sc)
			emit(t, err)
		default:
			fmt.Fprintf(os.Stderr, "avbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if *experiment == "all" {
		t1, err := bench.Table1(sc)
		emit(t1, err)
		t2, err := bench.Table2(sc)
		emit(t2, err)
		t3, t4, err := bench.Table3And4(dir, sc)
		emit(t3, err)
		emit(t4, nil)
		t5, err := bench.Table5(dir, sc)
		emit(t5, err)
		t6, err := bench.Table6(dir, sc)
		emit(t6, err)
		t7, err := bench.Table7(dir, sc)
		emit(t7, err)
		tm, err := bench.Materialization(dir, sc)
		emit(tm, err)
		tw, err := bench.WorkloadAware(dir, sc)
		emit(tw, err)
		ta, err := bench.Ablations(dir, sc)
		emit(ta, err)
		hotpath()
		serverExp()
		adaptive()
		ingest()
		tracing()
		manifest()
		return
	}
	run(*experiment)
}

// writeJSON atomically replaces path with the indented JSON encoding of
// v. The temp file is hidden (dot-prefixed) and uniquely named so an
// interrupted or concurrent bench run can neither leave a torn file
// matching the BENCH_*.json artifact glob nor corrupt another run's
// write, and it is fsynced before the rename so the committed file is
// never empty after a crash.
func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp-*") //avlint:allow-os bench artifact, outside durability boundary
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(append(raw, '\n'))
	if werr == nil {
		werr = f.Sync() //avlint:allow-os bench artifact, outside durability boundary
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path) //avlint:allow-os bench artifact, outside durability boundary
	}
	if werr != nil {
		if rerr := os.Remove(tmp); rerr != nil && !os.IsNotExist(rerr) { //avlint:allow-os bench artifact, outside durability boundary
			// the write error still wins, but a lingering temp file would
			// survive as hidden debris next to the artifact — say so
			fmt.Fprintf(os.Stderr, "avbench: leaking temp file %s: %v\n", tmp, rerr)
		}
		return werr
	}
	return nil
}

func emit(t bench.Table, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Println(t.String())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "avbench: %v\n", err)
	os.Exit(1)
}
