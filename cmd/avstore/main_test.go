package main

import (
	"os"
	"path/filepath"
	"testing"

	"arrayvers"
	"arrayvers/internal/array"
)

func TestParseSchema(t *testing.T) {
	sch, err := parseSchema("A", "Y:0:255,X:0:127", "V:float32,W:int64")
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Dims) != 2 || sch.Dims[0].Hi != 255 || sch.Dims[1].Size() != 128 {
		t.Fatalf("dims: %+v", sch.Dims)
	}
	if len(sch.Attrs) != 2 || sch.Attrs[0].Type != arrayvers.Float32 || sch.Attrs[1].Type != arrayvers.Int64 {
		t.Fatalf("attrs: %+v", sch.Attrs)
	}
	bad := [][3]string{
		{"", "Y:0:1", "V:int32"},
		{"A", "", "V:int32"},
		{"A", "Y:0:1", ""},
		{"A", "Y:0", "V:int32"},
		{"A", "Y:x:1", "V:int32"},
		{"A", "Y:0:1", "V"},
		{"A", "Y:0:1", "V:bogus"},
		{"A", "Y:1:0", "V:int32"},
	}
	for _, b := range bad {
		if _, err := parseSchema(b[0], b[1], b[2]); err == nil {
			t.Errorf("parseSchema(%q,%q,%q) accepted", b[0], b[1], b[2])
		}
	}
}

func TestParseBox(t *testing.T) {
	box, err := parseBox("0,0:16,16")
	if err != nil {
		t.Fatal(err)
	}
	if box.Lo[0] != 0 || box.Hi[1] != 16 {
		t.Fatalf("box: %v", box)
	}
	for _, b := range []string{"", "1,2", "1:2:3", "a,0:1,1"} {
		if _, err := parseBox(b); err == nil {
			t.Errorf("parseBox(%q) accepted", b)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]arrayvers.LayoutPolicy{
		"optimal": arrayvers.PolicyOptimal, "algorithm1": arrayvers.PolicyAlgorithm1,
		"algorithm2": arrayvers.PolicyAlgorithm2, "linear": arrayvers.PolicyLinearChain,
		"head": arrayvers.PolicyHeadBiased,
	} {
		got, err := parsePolicy(name)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parsePolicy("nope"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestParseWorkloadSpec(t *testing.T) {
	qs, err := parseWorkloadSpec("1*50,3-8*10,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("got %d queries: %v", len(qs), qs)
	}
	if qs[0].Weight != 50 || len(qs[0].Versions) != 1 || qs[0].Versions[0] != 1 {
		t.Fatalf("snapshot term: %+v", qs[0])
	}
	if qs[1].Weight != 10 || len(qs[1].Versions) != 6 || qs[1].Versions[5] != 8 {
		t.Fatalf("range term: %+v", qs[1])
	}
	if qs[2].Weight != 1 || qs[2].Versions[0] != 4 {
		t.Fatalf("default-weight term: %+v", qs[2])
	}
	for _, bad := range []string{"", "x*2", "3-1*2", "1*-2", "1*0", "2-x"} {
		if _, err := parseWorkloadSpec(bad); err == nil {
			t.Errorf("parseWorkloadSpec(%q) accepted", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	// generate a payload file
	d := array.MustDense(array.Int32, []int64{4, 4})
	for i := int64(0); i < 16; i++ {
		d.SetBits(i, i)
	}
	payload := filepath.Join(dir, "v.dat")
	if err := os.WriteFile(payload, array.MarshalDense(d), 0o644); err != nil {
		t.Fatal(err)
	}
	steps := [][]string{
		{"-store", store, "create", "-name", "A", "-dims", "Y:0:3,X:0:3", "-attrs", "V:int32"},
		{"-store", store, "load", "-name", "A", "-file", payload},
		{"-store", store, "load", "-name", "A", "-file", payload},
		{"-store", store, "versions", "-name", "A"},
		{"-store", store, "info", "-name", "A"},
		{"-store", store, "list"},
		{"-store", store, "select", "-name", "A", "-version", "2"},
		{"-store", store, "select", "-name", "A", "-version", "1", "-box", "0,0:2,2", "-out", filepath.Join(dir, "out.dat")},
		{"-store", store, "reorganize", "-name", "A", "-policy", "optimal"},
		{"-store", store, "tune", "-name", "A", "-spec", "1*20,1-2*5"},
		{"-store", store, "verify", "-name", "A"},
		{"-store", store, "delete-version", "-name", "A", "-version", "1"},
		{"-store", store, "drop", "-name", "A"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("avstore %v: %v", args, err)
		}
	}
	// the exported region must be loadable
	raw, err := os.ReadFile(filepath.Join(dir, "out.dat"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := array.UnmarshalDense(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shape()[0] != 2 || got.BitsAt([]int64{1, 1}) != 5 {
		t.Fatalf("exported region wrong: %v", got.Shape())
	}
	// error paths
	if err := run([]string{"-store", store, "bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"-store", store}); err == nil {
		t.Error("missing command accepted")
	}
}
