// Command avstore administers a versioned array store from the command
// line: create arrays, load versions from array blob files, select
// versions or regions, inspect metadata, and reorganize layouts.
//
// Usage:
//
//	avstore -store DIR create  -name A -dims Y:0:255,X:0:255 -attrs V:float32
//	avstore -store DIR load    -name A -file v1.dat
//	avstore -store DIR batch   -parts A=v1.dat,B=v2.dat   # one atomic cross-array commit
//	avstore batch -addr http://host:7421 -parts A=v1.dat,B=v2.dat
//	avstore -store DIR select  -name A -version 3 [-box 0,0:16,16] [-out f.dat] [-trace]
//	avstore select -addr http://host:7421 -name A -version 3 [-box ...] [-trace]
//	avstore -store DIR versions -name A
//	avstore -store DIR info    -name A
//	avstore -store DIR stats             # or: avstore stats -addr http://host:7421
//	avstore -store DIR list
//	avstore -store DIR reorganize -name A -policy optimal|algorithm1|algorithm2|linear|head
//	avstore -store DIR tune    -name A [-spec "1*50,3-8*10"] [-min-savings 0.1]
//	avstore tune -addr http://host:7421 -name A   # force a pass on a daemon
//	avstore -store DIR delete-version -name A -version 2
//	avstore -store DIR verify  -name A
//	avstore -store DIR fsck    [-name A]
//	avstore -store DIR drop    -name A
//
// tune runs one adaptive-reorganizer pass (§IV-D): it weighs the
// array's recorded workload against the current layout and re-lays the
// array out when the projected I/O savings clear -min-savings. An
// embedded store has no recorded traffic of its own, so -spec seeds the
// histogram with an a-priori workload: comma-separated v*weight
// (snapshot) or lo-hi*weight (range) terms. With -addr the pass runs on
// a live daemon, which has been recording its clients' selects.
//
// select -trace runs the query under a trace and prints its per-stage
// breakdown (snapshot, cache, read, decode, delta, materialize) to
// stderr — EXPLAIN ANALYZE for box selects. With -addr the query runs
// on the daemon carrying an AV-Trace-Id header, and the breakdown is
// fetched back from the daemon's /debug/traces ring, so the stages
// reflect the server-side pipeline.
//
// The global -cache-bytes and -parallelism flags tune the decoded-chunk
// cache and the hot-path worker pool for the invocation. The global
// -durable flag fsyncs every commit and runs crash recovery at open; it
// is off by default so that read-only subcommands never mutate a store
// directory (recovery truncates and sweeps — running it under a live
// avstored would corrupt the daemon's in-flight writes). fsck forces it
// on, reports what recovery repaired, then deep-verifies the store-wide
// manifest commit log (checksums, sequence continuity, orphaned-record
// sweep) and runs the full integrity check over every array; only run
// fsck with the daemon stopped.
//
// batch loads several blob files into several arrays under ONE commit
// point (the manifest log's atomic cross-array append): either every
// named array gains its version or none does, even across a crash.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"arrayvers"
	"arrayvers/client"
	"arrayvers/internal/array"
	"arrayvers/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "avstore: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("avstore", flag.ContinueOnError)
	storeDir := global.String("store", "", "store directory (required)")
	cacheBytes := global.Int64("cache-bytes", 0, "decoded-chunk cache budget in bytes (0 disables)")
	parallelism := global.Int("parallelism", 0, "hot-path worker pool size (0 = GOMAXPROCS, 1 = serial)")
	durable := global.Bool("durable", false, "fsync commits and run crash recovery at open (do not use on a store a live avstored owns)")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: avstore -store DIR <create|load|batch|select|versions|info|stats|list|reorganize|tune|verify|fsck|delete-version|drop> [flags]")
	}
	cmd, cmdArgs := rest[0], rest[1:]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	name := fs.String("name", "", "array name")
	file := fs.String("file", "", "array blob file")
	out := fs.String("out", "", "output file (default: print summary)")
	version := fs.Int("version", 0, "version id")
	dims := fs.String("dims", "", "dimensions, e.g. Y:0:255,X:0:255")
	attrs := fs.String("attrs", "", "attributes, e.g. V:float32")
	boxSpec := fs.String("box", "", "region, e.g. 0,0:16,16 (lo:hi, hi exclusive)")
	partsSpec := fs.String("parts", "", "batch: comma-separated array=blobfile pairs committed atomically")
	policy := fs.String("policy", "optimal", "layout policy for reorganize")
	spec := fs.String("spec", "", "tune: seed workload, comma-separated v*weight or lo-hi*weight terms")
	minSavings := fs.Float64("min-savings", 0, "tune: fractional projected I/O savings required to re-lay out (0 = default 0.10)")
	addr := fs.String("addr", "", "avstored base URL (stats, tune, select: talk to a running daemon instead of a store directory)")
	traceFlag := fs.Bool("trace", false, "select: trace the query and print its per-stage breakdown to stderr (with -addr, fetched from the daemon's /debug/traces)")
	if err := fs.Parse(cmdArgs); err != nil {
		return err
	}

	// `stats -addr` / `tune -addr` / `select -addr` ask a running
	// daemon, no store directory needed
	if *addr != "" {
		c := client.New(*addr)
		switch cmd {
		case "select":
			sel := c
			traceID := ""
			if *traceFlag {
				traceID = arrayvers.NewTraceID()
				sel = c.WithTrace(traceID)
			}
			var pl arrayvers.Plane
			var err error
			if *boxSpec != "" {
				box, berr := parseBox(*boxSpec)
				if berr != nil {
					return berr
				}
				pl, err = sel.SelectRegion(*name, *version, box)
			} else {
				pl, err = sel.Select(*name, *version)
			}
			if err != nil {
				return err
			}
			if err := emitPlane(pl, *out); err != nil {
				return err
			}
			if traceID != "" {
				sum, terr := c.Trace(traceID)
				if terr != nil {
					return fmt.Errorf("select succeeded but the trace could not be fetched: %w", terr)
				}
				cliutil.WriteTrace(os.Stderr, sum)
			}
			return nil
		case "stats":
			st, err := c.Stats()
			if err != nil {
				return err
			}
			cliutil.WriteStats(os.Stdout, st)
			return nil
		case "batch":
			batches, err := parseParts(*partsSpec)
			if err != nil {
				return err
			}
			out, err := c.InsertMulti(batches)
			if err != nil {
				return err
			}
			printMultiResult(out)
			return nil
		case "tune":
			if *name == "" {
				return fmt.Errorf("tune needs -name")
			}
			if *minSavings != 0 {
				return fmt.Errorf("-min-savings only applies to embedded stores; the daemon's threshold is its -autotune-min-savings flag")
			}
			if *spec != "" {
				queries, err := parseWorkloadSpec(*spec)
				if err != nil {
					return err
				}
				if err := c.RecordWorkload(*name, queries); err != nil {
					return err
				}
			}
			rep, err := c.Tune(*name)
			if err != nil {
				return err
			}
			printTuneReport(rep)
			return nil
		default:
			return fmt.Errorf("avstore: -addr is only supported by the stats, tune, select, and batch subcommands")
		}
	}
	if *storeDir == "" {
		return fmt.Errorf("avstore: -store is required (or use: avstore stats -addr URL)")
	}
	if cmd == "fsck" {
		*durable = true // fsck is pointless without recovery at open
	}
	opts := cliutil.StoreOptions(*cacheBytes, *parallelism, *durable)
	if cmd == "tune" {
		opts.AutoTune.MinSavings = *minSavings
		// a forced CLI pass should always estimate, even for a small
		// seeded workload
		opts.AutoTune.MinOps = 1
	}
	store, err := arrayvers.Open(*storeDir, opts)
	if err != nil {
		return err
	}
	defer store.Close()
	stopSig := cliutil.CleanupOnSignal(func() { store.Close() })
	defer stopSig()

	switch cmd {
	case "create":
		schema, err := parseSchema(*name, *dims, *attrs)
		if err != nil {
			return err
		}
		if err := store.CreateArray(schema); err != nil {
			return err
		}
		fmt.Printf("created array %s\n", *name)
	case "load":
		raw, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		v, err := array.Unmarshal(raw)
		if err != nil {
			return err
		}
		var payload arrayvers.Payload
		switch a := v.(type) {
		case *arrayvers.Dense:
			payload = arrayvers.DensePayload(a)
		case *arrayvers.Sparse:
			payload = arrayvers.SparsePayload(a)
		}
		id, err := store.Insert(*name, payload)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %s@%d\n", *name, id)
	case "batch":
		batches, err := parseParts(*partsSpec)
		if err != nil {
			return err
		}
		out, err := store.InsertMulti(batches)
		if err != nil {
			return err
		}
		printMultiResult(out)
	case "select":
		ctx := context.Background()
		var tr *arrayvers.Trace
		if *traceFlag {
			tr = arrayvers.NewTrace("avstore-select")
			ctx = arrayvers.TraceContext(ctx, tr)
		}
		var pl arrayvers.Plane
		var err error
		if *boxSpec != "" {
			box, berr := parseBox(*boxSpec)
			if berr != nil {
				return berr
			}
			pl, err = store.SelectRegionAttrCtx(ctx, *name, *version, "", box)
		} else {
			pl, err = store.SelectAttrCtx(ctx, *name, *version, "")
		}
		if err != nil {
			return err
		}
		if err := emitPlane(pl, *out); err != nil {
			return err
		}
		if tr != nil {
			cliutil.WriteTrace(os.Stderr, tr.Finish())
		}
	case "versions":
		infos, err := store.Versions(*name)
		if err != nil {
			return err
		}
		for _, vi := range infos {
			bases := "materialized"
			if len(vi.DeltaBases) > 0 {
				bases = fmt.Sprintf("delta vs %v", vi.DeltaBases)
			}
			fmt.Printf("%s@%d  %s  kind=%s  %d bytes  %s\n",
				*name, vi.ID, vi.Time.Format("2006-01-02 15:04:05"), vi.Kind, vi.Bytes, bases)
		}
	case "info":
		info, err := store.Info(*name)
		if err != nil {
			return err
		}
		fmt.Printf("array %s: %d versions, %s on disk, logical %s/version, %d chunks (side %v), sparse=%v\n",
			*name, info.NumVersions, human(info.DiskBytes), human(info.LogicalSize), info.NumChunks, info.ChunkSide, info.SparseRep)
		fmt.Println("store counters (this invocation):")
		cliutil.WriteStats(os.Stdout, store.Stats())
	case "stats":
		// a fresh CLI process has per-process counters: they cover this
		// invocation only; the -addr form reflects a live daemon workload
		fmt.Println("store counters (this invocation; use -addr for a running avstored):")
		cliutil.WriteStats(os.Stdout, store.Stats())
	case "list":
		for _, n := range store.ListArrays() {
			fmt.Println(n)
		}
	case "reorganize":
		p, err := parsePolicy(*policy)
		if err != nil {
			return err
		}
		if err := store.Reorganize(*name, arrayvers.ReorganizeOptions{Policy: p}); err != nil {
			return err
		}
		info, _ := store.Info(*name)
		fmt.Printf("reorganized %s with %s layout: %s on disk\n", *name, *policy, human(info.DiskBytes))
	case "tune":
		if *name == "" {
			return fmt.Errorf("tune needs -name")
		}
		if *spec != "" {
			queries, err := parseWorkloadSpec(*spec)
			if err != nil {
				return err
			}
			if err := store.RecordWorkload(*name, queries); err != nil {
				return err
			}
		}
		rep, err := store.Tune(*name)
		if err != nil {
			return err
		}
		printTuneReport(rep)
	case "delete-version":
		if err := store.DeleteVersion(*name, *version); err != nil {
			return err
		}
		if err := store.Compact(*name); err != nil {
			return err
		}
		fmt.Printf("deleted %s@%d and compacted\n", *name, *version)
	case "verify":
		rep, err := store.Verify(*name)
		if err != nil {
			return err
		}
		fmt.Printf("array %s: %d versions, %d chunk payloads, %s dangling\n",
			rep.Array, rep.Versions, rep.Chunks, human(rep.DanglingBytes))
		maxDepth := 0
		for _, d := range rep.ChainDepths {
			if d > maxDepth {
				maxDepth = d
			}
		}
		fmt.Printf("longest delta chain: %d\n", maxDepth)
		if rep.Ok() {
			fmt.Println("OK")
		} else {
			for _, p := range rep.Problems {
				fmt.Printf("PROBLEM: %s\n", p)
			}
			return fmt.Errorf("%d integrity problem(s)", len(rep.Problems))
		}
	case "fsck":
		// crash recovery already ran when the store opened; report it,
		// then run the deep integrity check (decode every version)
		rec := store.Stats()
		fmt.Printf("recovery: removed %d stale files, truncated %d torn tails (%s), dropped %d unreadable versions\n",
			rec.RecoveryRemovedFiles, rec.RecoveryTruncatedFiles, human(rec.RecoveryTruncatedBytes), rec.RecoveryDroppedVersions)
		problems := 0
		mrep, err := store.VerifyManifest()
		if err != nil {
			return err
		}
		if mrep.Enabled {
			fmt.Printf("manifest: gen %d, snapshot seq %d, %d log record(s) through seq %d, %d array(s), %s torn tail\n",
				mrep.Gen, mrep.SnapshotSeq, mrep.LogRecords, mrep.LastSeq, mrep.Arrays, human(mrep.TornBytes))
			for _, f := range mrep.StrayFiles {
				fmt.Printf("  stray: %s\n", f)
			}
			for _, p := range mrep.Problems {
				fmt.Printf("  PROBLEM: %s\n", p)
				problems++
			}
		} else {
			fmt.Println("manifest: not in use (legacy per-array commit protocol)")
		}
		names := store.ListArrays()
		if *name != "" {
			names = []string{*name}
		}
		for _, n := range names {
			rep, err := store.Verify(n)
			if err != nil {
				return err
			}
			status := "OK"
			if !rep.Ok() {
				status = fmt.Sprintf("%d PROBLEM(S)", len(rep.Problems))
			}
			fmt.Printf("array %s: %d versions, %d chunk payloads, %s dangling — %s\n",
				n, rep.Versions, rep.Chunks, human(rep.DanglingBytes), status)
			for _, p := range rep.Problems {
				fmt.Printf("  PROBLEM: %s\n", p)
				problems++
			}
		}
		if problems > 0 {
			return fmt.Errorf("fsck: %d integrity problem(s) across %d array(s)", problems, len(names))
		}
		fmt.Printf("fsck: %d array(s) clean\n", len(names))
	case "drop":
		if err := store.DeleteArray(*name); err != nil {
			return err
		}
		fmt.Printf("dropped array %s\n", *name)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// parseParts parses the batch -parts syntax: comma-separated
// array=blobfile pairs, each blob loaded the same way as the load
// subcommand. One array may appear once.
func parseParts(spec string) ([]arrayvers.MultiInsert, error) {
	if spec == "" {
		return nil, fmt.Errorf("batch needs -parts array=blobfile[,array=blobfile...]")
	}
	var out []arrayvers.MultiInsert
	for _, term := range strings.Split(spec, ",") {
		name, file, ok := strings.Cut(term, "=")
		if !ok || name == "" || file == "" {
			return nil, fmt.Errorf("bad -parts term %q (want array=blobfile)", term)
		}
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		v, err := array.Unmarshal(raw)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", file, err)
		}
		var payload arrayvers.Payload
		switch a := v.(type) {
		case *arrayvers.Dense:
			payload = arrayvers.DensePayload(a)
		case *arrayvers.Sparse:
			payload = arrayvers.SparsePayload(a)
		}
		out = append(out, arrayvers.MultiInsert{Array: name, Payloads: []arrayvers.Payload{payload}})
	}
	return out, nil
}

func printMultiResult(out map[string][]int) {
	names := make([]string, 0, len(out))
	for n := range out {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, id := range out[n] {
			fmt.Printf("committed %s@%d\n", n, id)
		}
	}
	fmt.Printf("batch: %d array(s) committed atomically\n", len(names))
}

// emitPlane writes a selected plane to a blob file, or prints its
// one-line summary when no -out was given.
func emitPlane(pl arrayvers.Plane, out string) error {
	if out != "" {
		var blob []byte
		if pl.IsSparse() {
			blob = array.MarshalSparse(pl.Sparse)
		} else {
			blob = array.MarshalDense(pl.Dense)
		}
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", out, len(blob))
	} else if pl.IsSparse() {
		fmt.Printf("sparse %v, %d non-default cells\n", pl.Sparse.Shape(), pl.Sparse.NNZ())
	} else {
		fmt.Printf("dense %v, %d cells, %d bytes\n", pl.Dense.Shape(), pl.Dense.NumCells(), pl.Dense.SizeBytes())
	}
	return nil
}

func parseSchema(name, dims, attrs string) (arrayvers.Schema, error) {
	if name == "" || dims == "" || attrs == "" {
		return arrayvers.Schema{}, fmt.Errorf("create needs -name, -dims and -attrs")
	}
	schema := arrayvers.Schema{Name: name}
	for _, d := range strings.Split(dims, ",") {
		parts := strings.Split(d, ":")
		if len(parts) != 3 {
			return arrayvers.Schema{}, fmt.Errorf("bad dimension %q (want name:lo:hi)", d)
		}
		lo, err1 := strconv.ParseInt(parts[1], 10, 64)
		hi, err2 := strconv.ParseInt(parts[2], 10, 64)
		if err1 != nil || err2 != nil {
			return arrayvers.Schema{}, fmt.Errorf("bad dimension bounds in %q", d)
		}
		schema.Dims = append(schema.Dims, arrayvers.Dimension{Name: parts[0], Lo: lo, Hi: hi})
	}
	for _, a := range strings.Split(attrs, ",") {
		parts := strings.Split(a, ":")
		if len(parts) != 2 {
			return arrayvers.Schema{}, fmt.Errorf("bad attribute %q (want name:type)", a)
		}
		dt, err := array.ParseDataType(parts[1])
		if err != nil {
			return arrayvers.Schema{}, err
		}
		schema.Attrs = append(schema.Attrs, arrayvers.Attribute{Name: parts[0], Type: dt})
	}
	return schema, schema.Validate()
}

// parseWorkloadSpec parses the tune -spec syntax: comma-separated terms,
// each "v*weight" (a snapshot query of version v) or "lo-hi*weight" (a
// range query over versions lo..hi inclusive); "*weight" defaults to 1.
func parseWorkloadSpec(spec string) ([]arrayvers.Query, error) {
	var out []arrayvers.Query
	for _, term := range strings.Split(spec, ",") {
		weight := 1.0
		vers := term
		if star := strings.LastIndex(term, "*"); star >= 0 {
			w, err := strconv.ParseFloat(term[star+1:], 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("bad workload weight in %q", term)
			}
			weight = w
			vers = term[:star]
		}
		if lo, hi, ok := strings.Cut(vers, "-"); ok {
			l, err1 := strconv.Atoi(lo)
			h, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || l > h {
				return nil, fmt.Errorf("bad workload range in %q", term)
			}
			out = append(out, arrayvers.Range(l, h, weight))
			continue
		}
		v, err := strconv.Atoi(vers)
		if err != nil {
			return nil, fmt.Errorf("bad workload version in %q", term)
		}
		out = append(out, arrayvers.Snapshot(v, weight))
	}
	return out, nil
}

func printTuneReport(rep arrayvers.TuneReport) {
	fmt.Printf("array %s: %.1f recorded ops across %d patterns\n", rep.Array, rep.Ops, rep.Patterns)
	if rep.CurrentCost > 0 {
		fmt.Printf("workload I/O cost: current %.0f, workload-aware %.0f (%.1f%% savings, threshold %.1f%%)\n",
			rep.CurrentCost, rep.ProjectedCost, rep.Savings*100, rep.MinSavings*100)
	}
	if rep.Reorganized {
		fmt.Println("reorganized with the workload-aware layout")
	} else {
		fmt.Printf("not reorganized: %s\n", rep.Reason)
	}
}

// parseBox and parsePolicy delegate to the shared cliutil forms, which
// the server's query parameters use too.
func parseBox(spec string) (arrayvers.Box, error) { return cliutil.ParseBox(spec) }

func parsePolicy(s string) (arrayvers.LayoutPolicy, error) { return cliutil.ParsePolicy(s) }

func human(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
