// Package arrayvers is a versioned storage manager for scientific array
// data, a from-scratch Go reproduction of "Efficient Versioning for
// Scientific Array Databases" (Seering, Cudré-Mauroux, Madden,
// Stonebraker — ICDE 2012), the versioning prototype built for SciDB.
//
// The library exposes a "no-overwrite" storage model: each update to a
// named array creates a new version, and versions form trees (via
// Branch) or DAGs (via Merge). Versions are stored chunk-by-chunk,
// delta-encoded against one another to minimize disk space or I/O cost,
// and optionally compressed. The layout optimizer decides which versions
// to materialize and which to delta — including the paper's
// spanning-tree Algorithm 1, spanning-forest Algorithm 2, an exact
// optimal layout, and workload-aware layouts.
//
// Quick start:
//
//	store, err := arrayvers.Open(dir, arrayvers.DefaultOptions())
//	...
//	err = store.CreateArray(arrayvers.Schema{
//		Name:  "Weather",
//		Dims:  []arrayvers.Dimension{{Name: "X", Lo: 0, Hi: 255}, {Name: "Y", Lo: 0, Hi: 255}},
//		Attrs: []arrayvers.Attribute{{Name: "Temp", Type: arrayvers.Float32}},
//	})
//	id, err := store.Insert("Weather", arrayvers.DensePayload(grid))
//	plane, err := store.Select("Weather", id)
//
// The same API is served over the network by the cmd/avstored daemon;
// the client package mirrors Store method-for-method, so switching a
// program from embedded to remote is a one-line change:
//
//	store := client.New("http://localhost:7421")
//
// See the examples/ directory for runnable programs (examples/remote
// runs one program body against both an embedded store and a daemon)
// and DESIGN.md for the mapping from the paper's sections to packages
// plus the service layer's wire format.
package arrayvers

import (
	"context"

	"arrayvers/internal/aql"
	"arrayvers/internal/array"
	"arrayvers/internal/compress"
	"arrayvers/internal/core"
	"arrayvers/internal/delta"
	"arrayvers/internal/layout"
	"arrayvers/internal/trace"
)

// Store is the versioned storage manager (paper §II). It supports the
// five basic operations — create array, delete array, create version,
// delete version, query version — plus Branch, Merge, four Select forms,
// metadata queries, and background reorganization.
//
// A Store is safe for concurrent use: selects snapshot metadata and
// decode chunks without serializing on the store lock, fan per-chunk
// work out on a bounded worker pool (Options.Parallelism), and share a
// store-wide LRU of reconstructed chunks (Options.CacheBytes) so
// repeated and overlapping version reads skip the delta-chain walk.
// Writes are concurrent too: inserts to different arrays encode and
// fsync in parallel under per-array write latches, concurrent durable
// inserts to one array coalesce into shared group commits, and
// InsertBatch lands many versions atomically in one commit. See
// DESIGN.md's "Concurrency & caching" and "Write path & group commit"
// sections.
type Store = core.Store

// Options configures a Store (chunk size, compression codec, delta
// method, automatic delta-ing, chain co-location, hot-path parallelism,
// and the decoded-chunk cache budget).
type Options = core.Options

// DefaultCacheBytes is a reasonable Options.CacheBytes budget for
// interactive workloads. The cache is off in DefaultOptions so that I/O
// accounting matches the paper's experiments; opt in with:
//
//	opts := arrayvers.DefaultOptions()
//	opts.CacheBytes = arrayvers.DefaultCacheBytes
const DefaultCacheBytes = core.DefaultCacheBytes

// Open creates or reopens a store rooted at a directory.
func Open(dir string, opts Options) (*Store, error) { return core.Open(dir, opts) }

// DefaultOptions returns the paper's defaults (10 MB chunks, hybrid
// deltas, co-located chains, automatic delta-ing).
func DefaultOptions() Options { return core.DefaultOptions() }

// Schema, dimensions, and attributes describe named arrays (§II-A).
type (
	Schema    = array.Schema
	Dimension = array.Dimension
	Attribute = array.Attribute
)

// DataType identifies a fixed-size cell type.
type DataType = array.DataType

// Cell types.
const (
	Int8    = array.Int8
	Int16   = array.Int16
	Int32   = array.Int32
	Int64   = array.Int64
	UInt8   = array.UInt8
	UInt16  = array.UInt16
	UInt32  = array.UInt32
	Float32 = array.Float32
	Float64 = array.Float64
)

// Dense is an N-dimensional row-major array; Sparse is a coordinate-list
// array with a default fill value; Box is a hyper-rectangle query region.
type (
	Dense  = array.Dense
	Sparse = array.Sparse
	Box    = array.Box
)

// NewDense allocates a zero-filled dense array.
func NewDense(dtype DataType, shape []int64) (*Dense, error) { return array.NewDense(dtype, shape) }

// NewSparse allocates an empty sparse array with the given fill pattern.
func NewSparse(dtype DataType, shape []int64, fill int64) (*Sparse, error) {
	return array.NewSparse(dtype, shape, fill)
}

// NewBox builds a query region from inclusive-lo / exclusive-hi corners.
func NewBox(lo, hi []int64) Box { return array.NewBox(lo, hi) }

// Stack combines same-shaped N-dimensional arrays into one
// (N+1)-dimensional array.
func Stack(arrays []*Dense) (*Dense, error) { return array.Stack(arrays) }

// Payload forms for Insert (§II-A): dense, sparse, and delta-list.
type (
	Payload    = core.Payload
	Plane      = core.Plane
	CellUpdate = core.CellUpdate
)

// MultiInsert names one array's payload batch within a Store.InsertMulti
// call — a cross-array batch committed atomically under the store-wide
// manifest log's single commit point.
type MultiInsert = core.MultiInsert

// DensePayload wraps a single-attribute dense version content.
func DensePayload(d *Dense) Payload { return core.DensePayload(d) }

// SparsePayload wraps a single-attribute sparse version content.
func SparsePayload(sp *Sparse) Payload { return core.SparsePayload(sp) }

// DeltaListPayload builds the delta-list insert form: the new version
// equals the base version except at the listed cell updates.
func DeltaListPayload(base int, updates []CellUpdate) Payload {
	return core.DeltaListPayload(base, updates)
}

// Version metadata types (§II-C).
type (
	VersionInfo = core.VersionInfo
	VersionRef  = core.VersionRef
	ArrayInfo   = core.ArrayInfo
	BranchRef   = core.BranchRef
	IOStats     = core.IOStats
	// RecoveryStats is what Open-time crash recovery repaired (populated
	// when Options.Durability is on; see Store.Recovery).
	RecoveryStats = core.RecoveryStats
)

// VerifyReport is the result of Store.Verify, an offline integrity check
// of one array (readability of every version, delta-chain sanity, and
// space reclaimable by Compact).
type VerifyReport = core.VerifyReport

// ManifestReport is the result of Store.VerifyManifest, a deep
// integrity check of the store-wide manifest commit log: CURRENT, the
// snapshot, every log record's checksum and sequence continuity, and
// the orphaned-record sweep. avstore fsck runs it before the per-array
// checks.
type ManifestReport = core.ManifestReport

// Fault tolerance: commit-protocol failures whose on-disk effect is
// uncertain flip the affected array (or, on disk-full, the whole store)
// into degraded read-only mode rather than crashing or guessing.
// Reads keep working; writes fail fast with ErrDegraded until
// Store.Heal — or the background heal prober (Options.HealInterval) —
// re-establishes the disk state and verifies the array. See DESIGN.md
// "Resilience & degraded modes".
type (
	Health      = core.Health
	ArrayHealth = core.ArrayHealth
	HealReport  = core.HealReport
)

// ErrDegraded is returned (wrapped) by writes rejected while an array
// or the store is in degraded read-only mode; match with errors.Is.
var ErrDegraded = core.ErrDegraded

// Reorganization (§IV): layout policies and options.
type (
	ReorganizeOptions = core.ReorganizeOptions
	LayoutPolicy      = core.LayoutPolicy
	// Layout assigns each version a materialization or a delta parent;
	// Store.CurrentLayout reports the one on disk.
	Layout = layout.Layout
)

// Adaptive reorganization (the closed loop on §IV-D): the store records
// every select's version set; the background tuner re-lays arrays out
// with PolicyWorkloadAware when the recorded workload's projected I/O
// savings clear Options.AutoTune.MinSavings. See Store.Tune,
// Store.Workload, and DESIGN.md "Adaptive reorganization".
type (
	AutoTuneOptions = core.AutoTuneOptions
	TuneReport      = core.TuneReport
	Tuner           = core.Tuner
)

// Layout policies.
const (
	PolicyOptimal       = core.PolicyOptimal
	PolicyAlgorithm1    = core.PolicyAlgorithm1
	PolicyAlgorithm2    = core.PolicyAlgorithm2
	PolicyLinearChain   = core.PolicyLinearChain
	PolicyHeadBiased    = core.PolicyHeadBiased
	PolicyWorkloadAware = core.PolicyWorkloadAware
)

// Query is one weighted workload element for workload-aware layouts
// (§IV-D).
type Query = layout.Query

// Snapshot builds a single-version query; Range builds a contiguous
// version-range query.
func Snapshot(v int, w float64) Query   { return layout.Snapshot(v, w) }
func Range(lo, hi int, w float64) Query { return layout.Range(lo, hi, w) }

// Compression codecs (§III-B.2).
type Codec = compress.Codec

// Codecs.
const (
	CodecNone     = compress.None
	CodecLZ       = compress.LZ
	CodecRLE      = compress.RLE
	CodecNullSupp = compress.NullSupp
	CodecPNG      = compress.PNG
	CodecWavelet  = compress.Wavelet
)

// Delta methods (§III-B.3).
type DeltaMethod = delta.Method

// Delta methods.
const (
	DeltaDense      = delta.Dense
	DeltaSparse     = delta.Sparse
	DeltaHybrid     = delta.Hybrid
	DeltaBlockMatch = delta.BlockMatch
	DeltaBSDiff     = delta.BSDiff
)

// Engine executes AQL statements (Appendix A) against a store.
type Engine = aql.Engine

// NewEngine wraps a store in an AQL executor.
func NewEngine(store *Store) *Engine { return aql.NewEngine(store) }

// AQLResult is the outcome of one AQL statement.
type AQLResult = aql.Result

// --- query tracing and profiling ---

// Trace is a per-request span recorder: carried through a context, it
// collects stage-level timings and byte counts as a query moves through
// the select or commit pipeline (see DESIGN.md "Observability").
type Trace = trace.Trace

// TraceSummary is one completed trace: total duration plus the ordered
// per-stage breakdown. The server's /debug/traces endpoint serves these.
type TraceSummary = trace.Summary

// TraceStage is one pipeline stage's aggregate within a TraceSummary.
type TraceStage = trace.StageSummary

// NewTraceID mints a fresh 128-bit hex trace ID, the same form the
// server assigns to untraced requests.
func NewTraceID() string { return trace.NewID() }

// NewTrace starts recording a trace under the given name.
func NewTrace(name string) *Trace { return trace.New(name) }

// JoinTrace starts recording under an existing trace ID (empty id mints
// a fresh one), so distributed parties agree on the identifier.
func JoinTrace(id, name string) *Trace { return trace.Join(id, name) }

// TraceContext attaches a trace to a context; every *Ctx store call
// made under that context records its pipeline stages into the trace.
func TraceContext(ctx context.Context, t *Trace) context.Context {
	return trace.NewContext(ctx, t)
}

// TraceFromContext returns the context's trace, or nil.
func TraceFromContext(ctx context.Context) *Trace { return trace.FromContext(ctx) }

// ProfileSnapshot is the store's cumulative stage-level profile: select
// and commit pipeline latency/byte histograms, group-commit batch
// sizes, tuner-pass durations, and per-array cache hit counters.
type ProfileSnapshot = core.ProfileSnapshot
