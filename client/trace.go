package client

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"arrayvers"
)

// traceHeader carries the trace ID over the wire; it must match
// internal/server.TraceHeader (duplicated to keep the client importable
// without the server package).
const traceHeader = "AV-Trace-Id"

// WithTrace returns a shallow copy of the client whose every request
// carries the given trace ID, so the server joins that trace and its
// per-stage breakdown becomes retrievable with Trace(id). The original
// client is unchanged; the copy shares its connection pool. Typical use
// traces exactly one call:
//
//	id := arrayvers.NewTraceID()
//	plane, err := c.WithTrace(id).SelectRegion(name, v, box)
//	sum, _ := c.Trace(id)
func (c *Client) WithTrace(id string) *Client {
	cp := *c
	cp.traceID = id
	return &cp
}

// Trace fetches one completed request trace from the server's
// /debug/traces ring by ID. The server publishes a trace right after
// the response body is sent, so a fetch racing the traced call's return
// may momentarily miss it; Trace retries briefly before reporting the
// trace as unknown or evicted.
func (c *Client) Trace(id string) (arrayvers.TraceSummary, error) {
	var sum arrayvers.TraceSummary
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			time.Sleep(20 * time.Millisecond)
		}
		err := c.getJSON("/debug/traces?id="+url.QueryEscape(id), &sum)
		if err == nil {
			return sum, nil
		}
		lastErr = err
		var ae *apiError
		if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
			return sum, err
		}
	}
	return sum, fmt.Errorf("client: trace %q not found: %w", id, lastErr)
}

// Traces fetches the server's ring of recently completed traces, newest
// first, capped at n (n <= 0 returns the whole ring).
func (c *Client) Traces(n int) ([]arrayvers.TraceSummary, error) {
	path := "/debug/traces"
	if n > 0 {
		path += fmt.Sprintf("?n=%d", n)
	}
	var out struct {
		Traces []arrayvers.TraceSummary `json:"traces"`
	}
	if err := c.getJSON(path, &out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}
