// Package client is the Go client for an avstored daemon: it mirrors
// the embedded arrayvers.Store API method-for-method (same names, same
// argument and result types) so a program can switch between linking
// the store and talking to a shared server by changing one line:
//
//	store, err := arrayvers.Open(dir, arrayvers.DefaultOptions())
//	// becomes
//	store := client.New("http://localhost:7421")
//
// Metadata getters that are infallible on the embedded store (such as
// ListArrays) necessarily grow an error result here, since every call
// crosses the network. Control messages travel as JSON; array payloads
// travel as internal/wire binary frames, decoded back into the same
// Dense/Sparse/VersionInfo types the embedded API returns.
package client

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"arrayvers"
	"arrayvers/internal/cliutil"
	"arrayvers/internal/wire"
)

// frameContentType labels binary frame requests/responses; it must
// match internal/server.FrameContentType (duplicated to keep the client
// importable without the server package).
const frameContentType = "application/x-arrayvers-frame"

// DefaultTimeout bounds each request end to end. It sits above the
// server's own per-request timeout (60s) so a slow-but-answering server
// reports its own 503 rather than the client giving up first; a hung
// connection still can't stall the caller forever.
const DefaultTimeout = 75 * time.Second

// RetryPolicy shapes the client's automatic retries. Retries apply only
// where they cannot duplicate work: reads (GET), requests the server
// rejected before executing (429), and inserts carrying an idempotency
// key (the server replays the committed ids instead of re-inserting).
// Backoff is exponential with full jitter, and a server-provided
// Retry-After hint overrides the computed delay when it is longer.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values <= 1 disable retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (doubled per retry).
	BaseDelay time.Duration
	// MaxDelay caps the backoff and any Retry-After hint.
	MaxDelay time.Duration
}

// DefaultRetryPolicy retries transient failures a few times over a few
// seconds — enough to ride out a group-commit stall, an in-flight-limit
// rejection, or a degraded store mid-heal, without masking a real outage.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}
}

// delay computes the sleep before the given retry (1-based), taking the
// larger of the jittered exponential backoff and the server's hint.
func (p RetryPolicy) delay(retry int, hint time.Duration) time.Duration {
	d := p.BaseDelay << (retry - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	if d > 0 {
		d = time.Duration(mrand.Int63n(int64(d))) + d/2 // jitter in [d/2, 3d/2)
	}
	if hint > d {
		d = hint
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// Client talks to one avstored daemon. It is safe for concurrent use.
type Client struct {
	base     string
	hc       *http.Client
	maxFrame int64
	retry    RetryPolicy
	// traceID, when set (see WithTrace), is stamped on every outgoing
	// request so the server joins the caller's trace instead of minting
	// its own.
	traceID string
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, test doubles). The replacement's own Timeout is kept as
// given — combine with WithTimeout to change it.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTimeout overrides the per-request timeout (DefaultTimeout).
// Zero disables the bound entirely.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.hc.Timeout = d } }

// WithRetryPolicy overrides the automatic retry behavior
// (DefaultRetryPolicy); RetryPolicy{MaxAttempts: 1} disables retries.
func WithRetryPolicy(p RetryPolicy) Option { return func(c *Client) { c.retry = p } }

// WithMaxFrameBytes bounds response frames the client will accept.
func WithMaxFrameBytes(n int64) Option { return func(c *Client) { c.maxFrame = n } }

// New builds a client for the daemon at baseURL (e.g.
// "http://localhost:7421"). It performs no I/O; use Ping to probe the
// connection.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:     strings.TrimRight(baseURL, "/"),
		hc:       &http.Client{Timeout: DefaultTimeout},
		maxFrame: wire.DefaultMaxFrameBytes,
		retry:    DefaultRetryPolicy(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Ping checks the daemon's health endpoint.
func (c *Client) Ping() error {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return fmt.Errorf("client: ping: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: ping: server returned %s", resp.Status)
	}
	return nil
}

// --- HTTP plumbing ---

// apiError is a non-2xx response decoded from the server's JSON error
// body.
type apiError struct {
	Status     int
	Message    string
	RetryAfter time.Duration // server's Retry-After hint, 0 if absent
}

func (e *apiError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}

// checkStatus converts a non-2xx response into an *apiError.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	var body struct {
		Error string `json:"error"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(raw, &body); err != nil || body.Error == "" {
		body.Error = strings.TrimSpace(string(raw))
	}
	var hint time.Duration
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		hint = time.Duration(secs) * time.Second
	}
	return &apiError{Status: resp.StatusCode, Message: body.Error, RetryAfter: hint}
}

// newIdemKey generates one idempotency key per logical insert; every
// retry of that insert reuses it, so the server can tell "same insert,
// lost ack" from "new insert".
func newIdemKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "" // no entropy: opt out of dedupe rather than reuse a key
	}
	return hex.EncodeToString(b[:])
}

// do issues one request, transparently retrying transient failures
// when a retry cannot duplicate work. body is a byte slice (not a
// Reader) so every attempt replays it from the start.
func (c *Client) do(method, path string, contentType string, body []byte) (*http.Response, error) {
	return c.doIdem(method, path, contentType, body, "")
}

func (c *Client) doIdem(method, path string, contentType string, body []byte, idemKey string) (*http.Response, error) {
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return nil, fmt.Errorf("client: %w", err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if idemKey != "" {
			req.Header.Set("Idempotency-Key", idemKey)
		}
		if c.traceID != "" {
			req.Header.Set(traceHeader, c.traceID)
		}
		resp, err := c.hc.Do(req)
		var hint time.Duration
		if err != nil {
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
			// a transport error may have reached the server: only safe
			// to retry when re-execution is harmless or deduped
			if method != http.MethodGet && idemKey == "" {
				return nil, lastErr
			}
		} else if serr := checkStatus(resp); serr != nil {
			drain(resp)
			lastErr = serr
			ae, _ := serr.(*apiError)
			if !retriableStatus(ae.Status) {
				return nil, serr
			}
			// 429 never entered the handler, so it is retriable even
			// without a key; 502/503/504 may have executed
			if ae.Status != http.StatusTooManyRequests && method != http.MethodGet && idemKey == "" {
				return nil, serr
			}
			hint = ae.RetryAfter
		} else {
			return resp, nil
		}
		if attempt >= attempts {
			return nil, lastErr
		}
		time.Sleep(c.retry.delay(attempt, hint))
	}
}

// retriableStatus reports whether a status speaks to a transient
// condition (overload, degraded mode, a bad hop) rather than to the
// request itself.
func retriableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

func (c *Client) getJSON(path string, out any) error {
	resp, err := c.do(http.MethodGet, path, "", nil)
	if err != nil {
		return err
	}
	defer drain(resp)
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) sendJSON(method, path string, in, out any) error {
	var body []byte
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		body = raw
	}
	resp, err := c.do(method, path, "application/json", body)
	if err != nil {
		return err
	}
	defer drain(resp)
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// --- array lifecycle and metadata ---

// CreateArray initializes a named array with the given schema.
func (c *Client) CreateArray(schema arrayvers.Schema) error {
	return c.sendJSON(http.MethodPost, "/v1/arrays", schema, nil)
}

// DeleteArray removes an array and all of its versions.
func (c *Client) DeleteArray(name string) error {
	return c.sendJSON(http.MethodDelete, "/v1/arrays/"+url.PathEscape(name), nil, nil)
}

// ListArrays returns the names of all arrays, sorted.
func (c *Client) ListArrays() ([]string, error) {
	var names []string
	err := c.getJSON("/v1/arrays", &names)
	return names, err
}

// Schema returns the schema of a named array.
func (c *Client) Schema(name string) (arrayvers.Schema, error) {
	var schema arrayvers.Schema
	err := c.getJSON("/v1/arrays/"+url.PathEscape(name)+"/schema", &schema)
	return schema, err
}

// Info returns an array's properties.
func (c *Client) Info(name string) (arrayvers.ArrayInfo, error) {
	var info arrayvers.ArrayInfo
	err := c.getJSON("/v1/arrays/"+url.PathEscape(name)+"/info", &info)
	return info, err
}

// Versions returns the ordered list of all live versions of an array.
func (c *Client) Versions(name string) ([]arrayvers.VersionInfo, error) {
	var infos []arrayvers.VersionInfo
	err := c.getJSON("/v1/arrays/"+url.PathEscape(name)+"/versions", &infos)
	return infos, err
}

// VersionAt returns the ID of the newest version committed at or before t.
func (c *Client) VersionAt(name string, t time.Time) (int, error) {
	var out struct {
		ID int `json:"id"`
	}
	path := "/v1/arrays/" + url.PathEscape(name) + "/version-at?time=" +
		url.QueryEscape(t.Format(time.RFC3339Nano))
	err := c.getJSON(path, &out)
	return out.ID, err
}

// BranchedFrom returns the provenance of a branched array, or nil.
func (c *Client) BranchedFrom(name string) (*arrayvers.BranchRef, error) {
	var ref *arrayvers.BranchRef
	err := c.getJSON("/v1/arrays/"+url.PathEscape(name)+"/branched-from", &ref)
	return ref, err
}

// Verify runs the server-side integrity check of one array.
func (c *Client) Verify(name string) (arrayvers.VerifyReport, error) {
	var rep arrayvers.VerifyReport
	err := c.getJSON("/v1/arrays/"+url.PathEscape(name)+"/verify", &rep)
	return rep, err
}

// Stats returns the server store's I/O and cache counters.
func (c *Client) Stats() (arrayvers.IOStats, error) {
	var st arrayvers.IOStats
	err := c.getJSON("/v1/stats", &st)
	return st, err
}

// ResetStats zeroes the server store's counters.
func (c *Client) ResetStats() error {
	return c.sendJSON(http.MethodPost, "/v1/stats/reset", nil, nil)
}

// Health reports the server store's degraded-mode state: whether any
// array (or the whole store) is in degraded read-only mode, why, and
// since when. Writes to a degraded array fail with a 503 until the
// server's heal prober recovers it.
func (c *Client) Health() (arrayvers.Health, error) {
	var h arrayvers.Health
	err := c.getJSON("/v1/health", &h)
	return h, err
}

// --- insert and select ---

// Insert adds a new version to the named array and returns its ID. All
// three payload forms (dense, sparse, delta-list) are supported; the
// content crosses the wire as one binary frame. Each call carries a
// fresh idempotency key, so the retry policy can safely re-send after
// a lost ack: the server replays the committed id instead of
// inserting a duplicate.
func (c *Client) Insert(name string, p arrayvers.Payload) (int, error) {
	var buf bytes.Buffer
	if err := wire.WritePayload(&buf, p); err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	resp, err := c.doIdem(http.MethodPost, "/v1/arrays/"+url.PathEscape(name)+"/versions", frameContentType, buf.Bytes(), newIdemKey())
	if err != nil {
		return 0, err
	}
	defer drain(resp)
	var out struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("client: decode insert response: %w", err)
	}
	return out.ID, nil
}

// InsertBatch adds a batch of versions in one request and one shared
// server-side commit (all-or-nothing), returning their IDs in payload
// order. The payloads travel as consecutive wire frames in a single
// request body, so a bulk load pays one HTTP round-trip and one
// durable commit instead of one per version.
func (c *Client) InsertBatch(name string, ps []arrayvers.Payload) ([]int, error) {
	var buf bytes.Buffer
	if err := wire.WritePayloadBatch(&buf, ps); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := c.doIdem(http.MethodPost, "/v1/arrays/"+url.PathEscape(name)+"/versions/batch", frameContentType, buf.Bytes(), newIdemKey())
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	var out struct {
		IDs []int `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decode insert-batch response: %w", err)
	}
	return out.IDs, nil
}

// InsertMulti adds payload batches to several arrays in one request
// and ONE server-side commit point: the store's manifest log makes
// every member durable in a single append+fsync, so either every array
// shows its new versions or none does — a guarantee per-array requests
// cannot compose. The result maps each array to its new version ids in
// payload order.
func (c *Client) InsertMulti(batches []arrayvers.MultiInsert) (map[string][]int, error) {
	var buf bytes.Buffer
	if err := wire.WriteMultiBatch(&buf, batches); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := c.doIdem(http.MethodPost, "/v1/batch", frameContentType, buf.Bytes(), newIdemKey())
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	var out struct {
		IDs map[string][]int `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decode insert-multi response: %w", err)
	}
	return out.IDs, nil
}

func (c *Client) selectPlane(name string, query string) (arrayvers.Plane, error) {
	resp, err := c.do(http.MethodGet, "/v1/arrays/"+url.PathEscape(name)+"/select?"+query, "", nil)
	if err != nil {
		return arrayvers.Plane{}, err
	}
	defer drain(resp)
	pl, err := wire.ReadPlane(resp.Body, c.maxFrame)
	if err != nil {
		return arrayvers.Plane{}, fmt.Errorf("client: %w", err)
	}
	return pl, nil
}

// Select returns the full content of one version's first attribute.
func (c *Client) Select(name string, id int) (arrayvers.Plane, error) {
	return c.selectPlane(name, "version="+strconv.Itoa(id))
}

// SelectAttr returns the full content of one version's named attribute
// (empty attr means the first).
func (c *Client) SelectAttr(name string, id int, attr string) (arrayvers.Plane, error) {
	return c.selectPlane(name, "version="+strconv.Itoa(id)+"&attr="+url.QueryEscape(attr))
}

// SelectRegion returns the hyper-rectangle box of one version's first
// attribute.
func (c *Client) SelectRegion(name string, id int, box arrayvers.Box) (arrayvers.Plane, error) {
	return c.selectPlane(name, "version="+strconv.Itoa(id)+"&box="+url.QueryEscape(cliutil.FormatBox(box)))
}

// SelectRegionAttr is SelectRegion for a named attribute.
func (c *Client) SelectRegionAttr(name string, id int, attr string, box arrayvers.Box) (arrayvers.Plane, error) {
	return c.selectPlane(name, "version="+strconv.Itoa(id)+
		"&attr="+url.QueryEscape(attr)+"&box="+url.QueryEscape(cliutil.FormatBox(box)))
}

func joinIDs(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

// SelectMulti returns an (N+1)-dimensional stack of the given dense
// versions.
func (c *Client) SelectMulti(name string, ids []int) (*arrayvers.Dense, error) {
	return c.selectMulti(name, "versions="+joinIDs(ids))
}

// SelectMultiRegion stacks the given hyper-rectangle of each listed
// version. A zero box selects the whole array.
func (c *Client) SelectMultiRegion(name string, ids []int, box arrayvers.Box) (*arrayvers.Dense, error) {
	query := "versions=" + joinIDs(ids)
	if box.NDim() > 0 {
		query += "&box=" + url.QueryEscape(cliutil.FormatBox(box))
	}
	return c.selectMulti(name, query)
}

func (c *Client) selectMulti(name, query string) (*arrayvers.Dense, error) {
	resp, err := c.do(http.MethodGet, "/v1/arrays/"+url.PathEscape(name)+"/select-multi?"+query, "", nil)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	d, err := wire.ReadDense(resp.Body, c.maxFrame)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return d, nil
}

// SelectSparseMulti returns the given region of each listed version of
// a sparse array, preserving the sparse representation. A zero box
// selects the whole array.
func (c *Client) SelectSparseMulti(name string, ids []int, box arrayvers.Box) ([]*arrayvers.Sparse, error) {
	query := "versions=" + joinIDs(ids)
	if box.NDim() > 0 {
		query += "&box=" + url.QueryEscape(cliutil.FormatBox(box))
	}
	resp, err := c.do(http.MethodGet, "/v1/arrays/"+url.PathEscape(name)+"/select-sparse-multi?"+query, "", nil)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	set, err := wire.ReadSparseSet(resp.Body, c.maxFrame)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return set, nil
}

// --- branch, merge, reorganize ---

// Branch creates a new named array whose first version is a copy of the
// given version of an existing array.
func (c *Client) Branch(srcName string, srcVersion int, newName string) error {
	body := map[string]any{"version": srcVersion, "newName": newName}
	return c.sendJSON(http.MethodPost, "/v1/arrays/"+url.PathEscape(srcName)+"/branch", body, nil)
}

// Merge combines two or more parent versions into a new array.
func (c *Client) Merge(newName string, parents []arrayvers.VersionRef) error {
	body := map[string]any{"newName": newName, "parents": parents}
	return c.sendJSON(http.MethodPost, "/v1/merge", body, nil)
}

// Reorganize re-encodes an array's versions under the chosen layout
// policy on the server.
func (c *Client) Reorganize(name string, opts arrayvers.ReorganizeOptions) error {
	body := map[string]any{
		"policy": opts.Policy.String(),
	}
	if opts.MatrixSample > 0 {
		body["matrixSample"] = opts.MatrixSample
	}
	if opts.BatchK > 0 {
		body["batchK"] = opts.BatchK
	}
	if len(opts.Workload) > 0 {
		body["workload"] = opts.Workload
	}
	return c.sendJSON(http.MethodPost, "/v1/arrays/"+url.PathEscape(name)+"/reorganize", body, nil)
}

// Tune forces one adaptive-tuner pass over the array on the server and
// returns its report (whether a reorganization was triggered, the
// estimated costs, and the reason when it was skipped).
func (c *Client) Tune(name string) (arrayvers.TuneReport, error) {
	var rep arrayvers.TuneReport
	err := c.sendJSON(http.MethodPost, "/v1/arrays/"+url.PathEscape(name)+"/tune", nil, &rep)
	return rep, err
}

// Workload returns the array's recorded access histogram as weighted
// queries, heaviest first.
func (c *Client) Workload(name string) ([]arrayvers.Query, error) {
	var wl []arrayvers.Query
	err := c.getJSON("/v1/arrays/"+url.PathEscape(name)+"/workload", &wl)
	return wl, err
}

// RecordWorkload merges the given weighted queries into the array's
// recorded workload on the server, seeding the adaptive tuner.
func (c *Client) RecordWorkload(name string, queries []arrayvers.Query) error {
	return c.sendJSON(http.MethodPost, "/v1/arrays/"+url.PathEscape(name)+"/workload", queries, nil)
}

// DeleteVersion marks one version deleted.
func (c *Client) DeleteVersion(name string, id int) error {
	return c.sendJSON(http.MethodPost, "/v1/arrays/"+url.PathEscape(name)+"/delete-version",
		map[string]any{"version": id}, nil)
}

// Compact rewrites an array's chunk files keeping only live payloads.
func (c *Client) Compact(name string) error {
	return c.sendJSON(http.MethodPost, "/v1/arrays/"+url.PathEscape(name)+"/compact", nil, nil)
}

// --- AQL ---

// Query executes one AQL statement on the server and returns the result
// in the same shape the embedded Engine produces: array output for
// SELECT (framed over the wire), names for VERSIONS/LIST, a message
// otherwise.
func (c *Client) Query(stmt string) (arrayvers.AQLResult, error) {
	resp, err := c.do(http.MethodPost, "/v1/aql", "application/json",
		[]byte(fmt.Sprintf(`{"stmt":%s}`, mustJSON(stmt))))
	if err != nil {
		return arrayvers.AQLResult{}, err
	}
	defer drain(resp)
	if strings.HasPrefix(resp.Header.Get("Content-Type"), frameContentType) {
		pl, err := wire.ReadPlane(resp.Body, c.maxFrame)
		if err != nil {
			return arrayvers.AQLResult{}, fmt.Errorf("client: %w", err)
		}
		return arrayvers.AQLResult{Dense: pl.Dense, Sparse: pl.Sparse}, nil
	}
	var out struct {
		Message string   `json:"message"`
		Names   []string `json:"names"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return arrayvers.AQLResult{}, fmt.Errorf("client: decode aql response: %w", err)
	}
	return arrayvers.AQLResult{Message: out.Message, Names: out.Names}, nil
}

func mustJSON(v any) string {
	raw, _ := json.Marshal(v)
	return string(raw)
}

// Close releases idle connections held by the underlying HTTP client.
// It mirrors Store.Close so the two APIs stay swappable.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// storeShape is the method set shared verbatim between the embedded
// store and this client; programs that want to swap the two with one
// line can depend on it (see examples/remote). The compile-time checks
// below keep the two APIs from drifting apart.
type storeShape interface {
	CreateArray(arrayvers.Schema) error
	Insert(string, arrayvers.Payload) (int, error)
	InsertBatch(string, []arrayvers.Payload) ([]int, error)
	InsertMulti([]arrayvers.MultiInsert) (map[string][]int, error)
	Select(string, int) (arrayvers.Plane, error)
	SelectAttr(string, int, string) (arrayvers.Plane, error)
	SelectRegion(string, int, arrayvers.Box) (arrayvers.Plane, error)
	SelectRegionAttr(string, int, string, arrayvers.Box) (arrayvers.Plane, error)
	SelectMulti(string, []int) (*arrayvers.Dense, error)
	SelectMultiRegion(string, []int, arrayvers.Box) (*arrayvers.Dense, error)
	SelectSparseMulti(string, []int, arrayvers.Box) ([]*arrayvers.Sparse, error)
	Versions(string) ([]arrayvers.VersionInfo, error)
	VersionAt(string, time.Time) (int, error)
	Info(string) (arrayvers.ArrayInfo, error)
	Schema(string) (arrayvers.Schema, error)
	BranchedFrom(string) (*arrayvers.BranchRef, error)
	Branch(string, int, string) error
	Merge(string, []arrayvers.VersionRef) error
	Reorganize(string, arrayvers.ReorganizeOptions) error
	Tune(string) (arrayvers.TuneReport, error)
	Workload(string) ([]arrayvers.Query, error)
	RecordWorkload(string, []arrayvers.Query) error
	DeleteVersion(string, int) error
	Compact(string) error
	Verify(string) (arrayvers.VerifyReport, error)
	DeleteArray(string) error
	Close() error
}

var (
	_ storeShape = (*arrayvers.Store)(nil)
	_ storeShape = (*Client)(nil)
)
