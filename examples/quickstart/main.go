// Quickstart: create a versioned array, commit a few versions, and read
// them back — whole versions, regions, and multi-version stacks.
package main

import (
	"fmt"
	"log"
	"os"

	"arrayvers"
)

func main() {
	dir, err := os.MkdirTemp("", "arrayvers-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := arrayvers.Open(dir, arrayvers.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 1. Create a named array: 16x16 grid of float32 temperatures.
	err = store.CreateArray(arrayvers.Schema{
		Name:  "Temps",
		Dims:  []arrayvers.Dimension{{Name: "Y", Lo: 0, Hi: 15}, {Name: "X", Lo: 0, Hi: 15}},
		Attrs: []arrayvers.Attribute{{Name: "Celsius", Type: arrayvers.Float32}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Commit three versions. The store is no-overwrite: each insert
	// creates a new version, automatically delta-encoded against its
	// predecessor when that is smaller.
	for v := 0; v < 3; v++ {
		grid, err := arrayvers.NewDense(arrayvers.Float32, []int64{16, 16})
		if err != nil {
			log.Fatal(err)
		}
		for i := int64(0); i < grid.NumCells(); i++ {
			grid.SetFloat(i, 20.0+float64(v)+0.01*float64(i))
		}
		id, err := store.Insert("Temps", arrayvers.DensePayload(grid))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("committed Temps@%d\n", id)
	}

	// 3. Read a whole version back.
	plane, err := store.Select("Temps", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Temps@2 cell (0,0) = %.2f°C\n", plane.Dense.Float(0))

	// 4. Read a hyper-rectangle of one version (only overlapping chunks
	// are touched on disk).
	region, err := store.SelectRegion("Temps", 3, arrayvers.NewBox([]int64{4, 4}, []int64{8, 8}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Temps@3 region shape = %v\n", region.Dense.Shape())

	// 5. Stack all three versions into a 3D array (time as first axis).
	stack, err := store.SelectMulti("Temps", []int{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stacked shape = %v (versions x Y x X)\n", stack.Shape())

	// 6. Inspect version metadata.
	infos, err := store.Versions("Temps")
	if err != nil {
		log.Fatal(err)
	}
	for _, vi := range infos {
		enc := "materialized"
		if len(vi.DeltaBases) > 0 {
			enc = fmt.Sprintf("delta vs %v", vi.DeltaBases)
		}
		fmt.Printf("Temps@%d: %d bytes on disk, %s\n", vi.ID, vi.Bytes, enc)
	}
	info, err := store.Info("Temps")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total on disk: %d bytes for %d versions (logical %d bytes/version)\n",
		info.DiskBytes, info.NumVersions, info.LogicalSize)
}
