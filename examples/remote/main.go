// Remote: the same program body runs against the embedded store or a
// running avstored daemon — the only line that changes is the one that
// builds the store handle. Start a daemon and point the example at it:
//
//	avstored -store /tmp/remote-store &
//	go run ./examples/remote -addr http://localhost:7421
//
// Without -addr the example opens an embedded store in a temp
// directory, demonstrating that the client package mirrors the
// embedded API method-for-method.
//
// The program exits non-zero if any remote result differs from the
// locally computed expectation, so CI uses it as the avstored smoke
// test.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"arrayvers"
	"arrayvers/client"
)

// versionedStore is the method set this program needs; both
// *arrayvers.Store and *client.Client satisfy it verbatim.
type versionedStore interface {
	CreateArray(arrayvers.Schema) error
	DeleteArray(string) error
	Insert(string, arrayvers.Payload) (int, error)
	InsertBatch(string, []arrayvers.Payload) ([]int, error)
	Select(string, int) (arrayvers.Plane, error)
	SelectRegion(string, int, arrayvers.Box) (arrayvers.Plane, error)
	SelectMulti(string, []int) (*arrayvers.Dense, error)
	Versions(string) ([]arrayvers.VersionInfo, error)
	Branch(string, int, string) error
	Close() error
}

func main() {
	addr := flag.String("addr", "", "avstored base URL (empty: run embedded in a temp dir)")
	flag.Parse()

	var store versionedStore
	if *addr != "" {
		store = client.New(*addr) // the one line that differs
	} else {
		dir, err := os.MkdirTemp("", "arrayvers-remote-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		embedded, err := arrayvers.Open(dir, arrayvers.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		store = embedded
	}
	defer store.Close()

	const name = "RemoteDemo"
	// make reruns against a long-lived daemon idempotent
	_ = store.DeleteArray(name)
	_ = store.DeleteArray(name + "_branch")

	err := store.CreateArray(arrayvers.Schema{
		Name:  name,
		Dims:  []arrayvers.Dimension{{Name: "Y", Lo: 0, Hi: 31}, {Name: "X", Lo: 0, Hi: 31}},
		Attrs: []arrayvers.Attribute{{Name: "V", Type: arrayvers.Int32}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// commit three versions, keeping local copies as the expectation
	var ids []int
	var want []*arrayvers.Dense
	for v := 0; v < 3; v++ {
		grid, err := arrayvers.NewDense(arrayvers.Int32, []int64{32, 32})
		if err != nil {
			log.Fatal(err)
		}
		for i := int64(0); i < grid.NumCells(); i++ {
			grid.SetBits(i, int64(v)*1000+i)
		}
		want = append(want, grid.Clone())
		id, err := store.Insert(name, arrayvers.DensePayload(grid))
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
		fmt.Printf("committed %s@%d\n", name, id)
	}

	// batched insert: three more versions in one request and one shared
	// commit (all-or-nothing server-side)
	var batch []arrayvers.Payload
	for v := 3; v < 6; v++ {
		grid, err := arrayvers.NewDense(arrayvers.Int32, []int64{32, 32})
		if err != nil {
			log.Fatal(err)
		}
		for i := int64(0); i < grid.NumCells(); i++ {
			grid.SetBits(i, int64(v)*1000+i)
		}
		want = append(want, grid.Clone())
		batch = append(batch, arrayvers.DensePayload(grid))
	}
	batchIDs, err := store.InsertBatch(name, batch)
	if err != nil {
		log.Fatal(err)
	}
	if len(batchIDs) != len(batch) {
		log.Fatalf("batch insert returned %d ids for %d payloads", len(batchIDs), len(batch))
	}
	ids = append(ids, batchIDs...)
	fmt.Printf("batch-committed %s@%v in one shared commit\n", name, batchIDs)

	// read each version back and compare against the local copy
	for i, id := range ids {
		pl, err := store.Select(name, id)
		if err != nil {
			log.Fatal(err)
		}
		if !pl.Dense.Equal(want[i]) {
			log.Fatalf("%s@%d round-trip mismatch", name, id)
		}
	}
	fmt.Printf("all %d versions round-trip byte-identical\n", len(ids))

	// region select
	box := arrayvers.NewBox([]int64{4, 4}, []int64{12, 12})
	pl, err := store.SelectRegion(name, ids[1], box)
	if err != nil {
		log.Fatal(err)
	}
	wantRegion, err := want[1].Slice(box)
	if err != nil {
		log.Fatal(err)
	}
	if !pl.Dense.Equal(wantRegion) {
		log.Fatal("region select mismatch")
	}
	fmt.Printf("region %v of %s@%d matches\n", box, name, ids[1])

	// multi-version stack
	stack, err := store.SelectMulti(name, ids)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stacked %d versions into shape %v\n", len(ids), stack.Shape())

	// branch and version history
	if err := store.Branch(name, ids[1], name+"_branch"); err != nil {
		log.Fatal(err)
	}
	bpl, err := store.Select(name+"_branch", 1)
	if err != nil {
		log.Fatal(err)
	}
	if !bpl.Dense.Equal(want[1]) {
		log.Fatal("branch content mismatch")
	}
	infos, err := store.Versions(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("branched %s@%d; %s has %d versions\n", name, ids[1], name, len(infos))
	fmt.Println("OK")
}
