// Astronomy: the paper's introductory "what-if" scenario. Raw telescope
// imagery is processed by different "cooking" algorithms that classify
// celestial objects and reject sensor noise; each cooking run branches
// off the raw data, producing a tree of versions whose relationships the
// DBMS tracks (§I).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"arrayvers"
)

const side = 96

func main() {
	dir, err := os.MkdirTemp("", "arrayvers-astro-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := arrayvers.Open(dir, arrayvers.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 1. Raw telescope imagery: dark sky, a few stars, and hot pixels
	// (sensor noise that "is quite easy to confuse for a star").
	raw, stars, hotPixels := makeSkyFrame(3)
	err = store.CreateArray(arrayvers.Schema{
		Name:  "SurveyField7",
		Dims:  []arrayvers.Dimension{{Name: "Y", Lo: 0, Hi: side - 1}, {Name: "X", Lo: 0, Hi: side - 1}},
		Attrs: []arrayvers.Attribute{{Name: "Flux", Type: arrayvers.UInt16}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.Insert("SurveyField7", arrayvers.DensePayload(raw)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw frame: %d star(s) + %d hot pixel(s) embedded\n", len(stars), len(hotPixels))

	// 2. Two cooking algorithms branch off the same raw version.
	if err := store.Branch("SurveyField7", 1, "Cooked_Threshold"); err != nil {
		log.Fatal(err)
	}
	if err := store.Branch("SurveyField7", 1, "Cooked_Neighborhood"); err != nil {
		log.Fatal(err)
	}

	// cooking A: plain thresholding — keeps hot pixels (false positives)
	cookA := cook(raw, func(img *arrayvers.Dense, y, x int64) int64 {
		if img.BitsAt([]int64{y, x}) > 2000 {
			return 65535
		}
		return 0
	})
	if _, err := store.Insert("Cooked_Threshold", arrayvers.DensePayload(cookA)); err != nil {
		log.Fatal(err)
	}

	// cooking B: neighborhood check — a real star lights its neighbors,
	// a hot pixel does not
	cookB := cook(raw, func(img *arrayvers.Dense, y, x int64) int64 {
		if img.BitsAt([]int64{y, x}) <= 2000 {
			return 0
		}
		lit := 0
		for dy := int64(-1); dy <= 1; dy++ {
			for dx := int64(-1); dx <= 1; dx++ {
				ny, nx := y+dy, x+dx
				if (dy != 0 || dx != 0) && ny >= 0 && ny < side && nx >= 0 && nx < side &&
					img.BitsAt([]int64{ny, nx}) > 700 {
					lit++
				}
			}
		}
		if lit >= 3 {
			return 65535
		}
		return 0
	})
	if _, err := store.Insert("Cooked_Neighborhood", arrayvers.DensePayload(cookB)); err != nil {
		log.Fatal(err)
	}

	// 3. Compare the two cooked results against ground truth.
	for _, name := range []string{"Cooked_Threshold", "Cooked_Neighborhood"} {
		infos, err := store.Versions(name)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := store.Select(name, infos[len(infos)-1].ID)
		if err != nil {
			log.Fatal(err)
		}
		tp, fp := score(pl.Dense, stars, hotPixels)
		ref, _ := store.BranchedFrom(name)
		fmt.Printf("%-20s branched from %s@%d: %d/%d stars found, %d false positive(s)\n",
			name, ref.Array, ref.Version, tp, len(stars), fp)
	}

	// 4. Merge the winning pipeline's detections with the raw data into
	// one lineage so downstream users see both as a sequence.
	err = store.Merge("Field7_Published", []arrayvers.VersionRef{
		{Array: "SurveyField7", Version: 1},
		{Array: "Cooked_Neighborhood", Version: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	infos, _ := store.Versions("Field7_Published")
	fmt.Printf("published lineage has %d versions (raw + cooked); arrays in store: %v\n",
		len(infos), store.ListArrays())
}

// makeSkyFrame renders stars (3x3 PSF blobs) and single hot pixels on a
// noisy dark background.
func makeSkyFrame(nStars int) (img *arrayvers.Dense, stars, hot [][2]int64) {
	rng := rand.New(rand.NewSource(11))
	img, err := arrayvers.NewDense(arrayvers.UInt16, []int64{side, side})
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < img.NumCells(); i++ {
		img.SetBits(i, int64(rng.Intn(200))) // read noise
	}
	for s := 0; s < nStars; s++ {
		y := 5 + rng.Int63n(side-10)
		x := 5 + rng.Int63n(side-10)
		stars = append(stars, [2]int64{y, x})
		for dy := int64(-1); dy <= 1; dy++ {
			for dx := int64(-1); dx <= 1; dx++ {
				v := int64(900)
				if dy == 0 && dx == 0 {
					v = 4000
				}
				img.SetBitsAt([]int64{y + dy, x + dx}, v+int64(rng.Intn(100)))
			}
		}
	}
	for h := 0; h < 2; h++ {
		y := 5 + rng.Int63n(side-10)
		x := 5 + rng.Int63n(side-10)
		hot = append(hot, [2]int64{y, x})
		img.SetBitsAt([]int64{y, x}, 5000) // bright lone pixel
	}
	return img, stars, hot
}

func cook(raw *arrayvers.Dense, classify func(*arrayvers.Dense, int64, int64) int64) *arrayvers.Dense {
	out, err := arrayvers.NewDense(arrayvers.UInt16, raw.Shape())
	if err != nil {
		log.Fatal(err)
	}
	for y := int64(0); y < side; y++ {
		for x := int64(0); x < side; x++ {
			out.SetBitsAt([]int64{y, x}, classify(raw, y, x))
		}
	}
	return out
}

func score(detection *arrayvers.Dense, stars, hot [][2]int64) (truePos, falsePos int) {
	for _, s := range stars {
		if detection.BitsAt([]int64{s[0], s[1]}) != 0 {
			truePos++
		}
	}
	for _, h := range hot {
		if detection.BitsAt([]int64{h[0], h[1]}) != 0 {
			falsePos++
		}
	}
	return truePos, falsePos
}
