// Weather: the paper's motivating NOAA workload — a sensor grid sampled
// every 15 minutes, kept fully versioned. Demonstrates storage-mode
// trade-offs (materialized vs delta chains vs optimal layout) and
// workload-aware reorganization for overlapping range scans (§IV-D,
// §V-D).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"arrayvers"
	"arrayvers/internal/datasets"
)

func main() {
	dir, err := os.MkdirTemp("", "arrayvers-weather-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := arrayvers.DefaultOptions()
	opts.ChunkBytes = 64 << 10
	store, err := arrayvers.Open(dir, opts)
	if err != nil {
		log.Fatal(err)
	}

	// a day of "specific humidity" grids at 96x15-minute cadence,
	// downsampled here to 24 versions on a 128x128 grid
	const versions = 24
	grids := datasets.NOAA(datasets.NOAAConfig{Side: 128, Versions: versions, Attrs: 1, Seed: 7})

	err = store.CreateArray(arrayvers.Schema{
		Name:  "Humidity",
		Dims:  []arrayvers.Dimension{{Name: "Y", Lo: 0, Hi: 127}, {Name: "X", Lo: 0, Hi: 127}},
		Attrs: []arrayvers.Attribute{{Name: "SpecificHumidity", Type: arrayvers.Float32}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range grids {
		if _, err := store.Insert("Humidity", arrayvers.DensePayload(g[0])); err != nil {
			log.Fatal(err)
		}
	}
	info, _ := store.Info("Humidity")
	raw := info.LogicalSize * int64(versions)
	fmt.Printf("ingested %d versions: %d KB on disk vs %d KB raw (%.1fx)\n",
		versions, info.DiskBytes/1024, raw/1024, float64(raw)/float64(info.DiskBytes))

	// a scientist tracking a storm cell re-reads overlapping version
	// ranges; tell the optimizer about it
	workload := []arrayvers.Query{
		arrayvers.Range(1, 10, 0.4),
		arrayvers.Range(7, 16, 0.4),
		arrayvers.Range(13, 22, 0.2),
	}
	runScan := func(label string) {
		store.ResetStats()
		start := time.Now()
		for _, q := range workload {
			if _, err := store.SelectMulti("Humidity", q.Versions); err != nil {
				log.Fatal(err)
			}
		}
		stats := store.Stats()
		fmt.Printf("%-22s %6.1f KB read, %v\n", label, float64(stats.BytesRead)/1024, time.Since(start).Round(time.Millisecond))
	}

	if err := store.Reorganize("Humidity", arrayvers.ReorganizeOptions{Policy: arrayvers.PolicyOptimal}); err != nil {
		log.Fatal(err)
	}
	runScan("space-optimal layout:")

	if err := store.Reorganize("Humidity", arrayvers.ReorganizeOptions{
		Policy:   arrayvers.PolicyWorkloadAware,
		Workload: workload,
	}); err != nil {
		log.Fatal(err)
	}
	runScan("workload-aware layout:")

	// region query: follow one storm cell through time as a 3D slab
	cell := arrayvers.NewBox([]int64{40, 40}, []int64{72, 72})
	slab, err := store.SelectMultiRegion("Humidity", []int{5, 6, 7, 8}, cell)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("storm-cell slab: %v (time x Y x X)\n", slab.Shape())
}
