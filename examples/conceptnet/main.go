// ConceptNet: sparse-array versioning — a huge, extremely sparse
// relationship matrix kept as weekly snapshots (the paper's Open Mind
// Common Sense workload, §V). Shows sparse payloads, delta-list updates,
// time-travel by date, and the AQL surface.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"arrayvers"
)

func main() {
	dir, err := os.MkdirTemp("", "arrayvers-cnet-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := arrayvers.Open(dir, arrayvers.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// a 1,000,000 x 1,000,000 sparse matrix of concept-relation weights
	const dim = 1_000_000
	err = store.CreateArray(arrayvers.Schema{
		Name:  "ConceptNet",
		Dims:  []arrayvers.Dimension{{Name: "From", Lo: 0, Hi: dim - 1}, {Name: "To", Lo: 0, Hi: dim - 1}},
		Attrs: []arrayvers.Attribute{{Name: "Weight", Type: arrayvers.Int32}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// weekly snapshots: ~20k relations, small churn per week
	rng := rand.New(rand.NewSource(3))
	cur, err := arrayvers.NewSparse(arrayvers.Int32, []int64{dim, dim}, 0)
	if err != nil {
		log.Fatal(err)
	}
	for cur.NNZ() < 20_000 {
		cur.SetBits(rng.Int63n(dim)*dim+rng.Int63n(dim), int64(rng.Intn(100)+1))
	}
	const weeks = 6
	for w := 0; w < weeks; w++ {
		if _, err := store.Insert("ConceptNet", arrayvers.SparsePayload(cur)); err != nil {
			log.Fatal(err)
		}
		for e := 0; e < 400; e++ { // the week's edits
			cur.SetBits(rng.Int63n(dim)*dim+rng.Int63n(dim), int64(rng.Intn(100)+1))
		}
	}
	info, _ := store.Info("ConceptNet")
	fmt.Printf("%d weekly snapshots of a %dx%d sparse matrix: %.1f KB on disk\n",
		info.NumVersions, dim, dim, float64(info.DiskBytes)/1024)

	// a targeted correction committed as a delta-list (the paper's third
	// insert form): fix one relation without resending the snapshot
	id, err := store.Insert("ConceptNet", arrayvers.DeltaListPayload(weeks, []arrayvers.CellUpdate{
		{Coords: []int64{42, 4242}, Bits: 99},
	}))
	if err != nil {
		log.Fatal(err)
	}
	pl, err := store.Select("ConceptNet", id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delta-list correction committed as version %d (weight[42,4242]=%d)\n",
		id, pl.Sparse.Bits(42*dim+4242))

	// sparse region scan: one concept's outgoing relations across all
	// versions
	row := arrayvers.NewBox([]int64{0, 0}, []int64{1000, dim})
	versions, err := store.SelectSparseMulti("ConceptNet", []int{1, weeks}, row)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relations among first 1000 concepts: week 1 has %d, week %d has %d\n",
		versions[0].NNZ(), weeks, versions[1].NNZ())

	// the AQL surface over the same store
	engine := arrayvers.NewEngine(store)
	res, err := engine.Execute("VERSIONS(ConceptNet);")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AQL VERSIONS: %s\n", res.String())
}
