package arrayvers_test

// One testing.B benchmark per evaluation artifact (Tables I–VII and the
// two §V-D experiments), each running the corresponding experiment
// harness at QuickScale. `cmd/avbench` runs the same experiments at full
// laptop scale and prints the paper-style tables; EXPERIMENTS.md records
// paper-vs-measured.

import (
	"testing"

	"arrayvers/internal/bench"
)

func BenchmarkTable1Differencing(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2DeltaCompression(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3And4OSMQueries(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Table3And4(b.TempDir(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Workloads(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table5(b.TempDir(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6VCSOnOSM(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table6(b.TempDir(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7VCSOnNOAA(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table7(b.TempDir(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterializationVsLinear(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Materialization(b.TempDir(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadAwareLayout(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.WorkloadAware(b.TempDir(), sc); err != nil {
			b.Fatal(err)
		}
	}
}
