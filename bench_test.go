package arrayvers_test

// One testing.B benchmark per evaluation artifact (Tables I–VII and the
// two §V-D experiments), each running the corresponding experiment
// harness at QuickScale. `cmd/avbench` runs the same experiments at full
// laptop scale and prints the paper-style tables; EXPERIMENTS.md records
// paper-vs-measured.

import (
	"testing"

	"arrayvers"
	"arrayvers/internal/bench"
)

func BenchmarkTable1Differencing(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2DeltaCompression(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3And4OSMQueries(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Table3And4(b.TempDir(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Workloads(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table5(b.TempDir(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6VCSOnOSM(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table6(b.TempDir(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7VCSOnNOAA(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table7(b.TempDir(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterializationVsLinear(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Materialization(b.TempDir(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadAwareLayout(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := bench.WorkloadAware(b.TempDir(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

// selectMultiChainStore builds the hot-path delta chain once per
// benchmark configuration; the returned ids select every version. The
// workload has the same shape as avbench's hotpath experiment (both use
// bench.HotPathSeries) but a different array size and seed, so compare
// ns/op within each harness, not across them.
func selectMultiChainStore(b *testing.B, parallelism int, cacheBytes int64) (*arrayvers.Store, []int) {
	b.Helper()
	opts := arrayvers.DefaultOptions()
	opts.ChunkBytes = 32 << 10
	opts.Parallelism = parallelism
	opts.CacheBytes = cacheBytes
	s, err := arrayvers.Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	const side = 128
	schema := arrayvers.Schema{
		Name:  "Chain",
		Dims:  []arrayvers.Dimension{{Name: "Y", Lo: 0, Hi: side - 1}, {Name: "X", Lo: 0, Hi: side - 1}},
		Attrs: []arrayvers.Attribute{{Name: "V", Type: arrayvers.Int32}},
	}
	if err := s.CreateArray(schema); err != nil {
		b.Fatal(err)
	}
	var ids []int
	for _, v := range bench.HotPathSeries(side, 9) {
		id, err := s.Insert("Chain", arrayvers.DensePayload(v))
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	return s, ids
}

func benchmarkSelectMultiChain(b *testing.B, parallelism int, cacheBytes int64) {
	s, ids := selectMultiChainStore(b, parallelism, cacheBytes)
	d, err := s.SelectMulti("Chain", ids)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(d.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SelectMulti("Chain", ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectMultiChainSerialNoCache is the seed behavior: one
// serial chain walk per query, nothing reused across queries.
func BenchmarkSelectMultiChainSerialNoCache(b *testing.B) {
	benchmarkSelectMultiChain(b, 1, 0)
}

// BenchmarkSelectMultiChainParallelCached runs the same stacked select
// with the worker pool at GOMAXPROCS and the decoded-chunk cache on.
func BenchmarkSelectMultiChainParallelCached(b *testing.B) {
	benchmarkSelectMultiChain(b, 0, arrayvers.DefaultCacheBytes)
}
