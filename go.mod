module arrayvers

go 1.22
