package arrayvers_test

import (
	"fmt"
	"log"
	"os"

	"arrayvers"
)

// Example demonstrates the core no-overwrite workflow: commit versions,
// read one back, and inspect how each version is encoded.
func Example() {
	dir, _ := os.MkdirTemp("", "arrayvers-example-*")
	defer os.RemoveAll(dir)
	store, err := arrayvers.Open(dir, arrayvers.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	_ = store.CreateArray(arrayvers.Schema{
		Name:  "Example",
		Dims:  []arrayvers.Dimension{{Name: "I", Lo: 0, Hi: 2}, {Name: "J", Lo: 0, Hi: 2}},
		Attrs: []arrayvers.Attribute{{Name: "A", Type: arrayvers.Int32}},
	})
	for mult := int64(1); mult <= 3; mult++ {
		g, _ := arrayvers.NewDense(arrayvers.Int32, []int64{3, 3})
		for i := int64(0); i < 9; i++ {
			g.SetBits(i, (i+1)*mult)
		}
		if _, err := store.Insert("Example", arrayvers.DensePayload(g)); err != nil {
			log.Fatal(err)
		}
	}
	pl, _ := store.Select("Example", 3)
	fmt.Println("Example@3 first row:", pl.Dense.Bits(0), pl.Dense.Bits(1), pl.Dense.Bits(2))
	infos, _ := store.Versions("Example")
	fmt.Println("versions:", len(infos))
	// Output:
	// Example@3 first row: 3 6 9
	// versions: 3
}

// ExampleStore_SelectMulti shows the paper's N+1-dimensional version
// stacking: selecting several versions of a 2D array yields a 3D array.
func ExampleStore_SelectMulti() {
	dir, _ := os.MkdirTemp("", "arrayvers-stack-*")
	defer os.RemoveAll(dir)
	store, _ := arrayvers.Open(dir, arrayvers.DefaultOptions())
	_ = store.CreateArray(arrayvers.Schema{
		Name:  "A",
		Dims:  []arrayvers.Dimension{{Name: "I", Lo: 0, Hi: 1}, {Name: "J", Lo: 0, Hi: 1}},
		Attrs: []arrayvers.Attribute{{Name: "V", Type: arrayvers.Int32}},
	})
	for v := int64(1); v <= 2; v++ {
		g, _ := arrayvers.NewDense(arrayvers.Int32, []int64{2, 2})
		g.Fill(v)
		store.Insert("A", arrayvers.DensePayload(g))
	}
	stack, _ := store.SelectMulti("A", []int{1, 2})
	fmt.Println("shape:", stack.Shape())
	fmt.Println("slab 0:", stack.BitsAt([]int64{0, 0, 0}), "slab 1:", stack.BitsAt([]int64{1, 0, 0}))
	// Output:
	// shape: [2 2 2]
	// slab 0: 1 slab 1: 2
}

// ExampleEngine shows the AQL surface from the paper's Appendix A.
func ExampleEngine() {
	dir, _ := os.MkdirTemp("", "arrayvers-aql-*")
	defer os.RemoveAll(dir)
	store, _ := arrayvers.Open(dir, arrayvers.DefaultOptions())
	engine := arrayvers.NewEngine(store)
	engine.Execute("CREATE UPDATABLE ARRAY Example ( A::INTEGER ) [ I=0:2, J=0:2 ];")
	res, _ := engine.Execute("VERSIONS(Example);")
	fmt.Println(res.String())
	// Output:
	// []
}

// ExampleStore_Branch shows version trees: a branch copies one version
// of an array into a new named array that evolves independently.
func ExampleStore_Branch() {
	dir, _ := os.MkdirTemp("", "arrayvers-branch-*")
	defer os.RemoveAll(dir)
	store, _ := arrayvers.Open(dir, arrayvers.DefaultOptions())
	_ = store.CreateArray(arrayvers.Schema{
		Name:  "Raw",
		Dims:  []arrayvers.Dimension{{Name: "I", Lo: 0, Hi: 3}},
		Attrs: []arrayvers.Attribute{{Name: "V", Type: arrayvers.Int32}},
	})
	g, _ := arrayvers.NewDense(arrayvers.Int32, []int64{4})
	g.Fill(7)
	store.Insert("Raw", arrayvers.DensePayload(g))
	store.Branch("Raw", 1, "Experiment")
	ref, _ := store.BranchedFrom("Experiment")
	fmt.Printf("Experiment branched from %s@%d\n", ref.Array, ref.Version)
	// Output:
	// Experiment branched from Raw@1
}
