package arrayvers_test

// End-to-end test of the public facade: everything a downstream user
// touches must be reachable through the arrayvers package alone.

import (
	"testing"

	"arrayvers"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	store, err := arrayvers.Open(t.TempDir(), arrayvers.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	err = store.CreateArray(arrayvers.Schema{
		Name:  "Example",
		Dims:  []arrayvers.Dimension{{Name: "I", Lo: 0, Hi: 31}, {Name: "J", Lo: 0, Hi: 31}},
		Attrs: []arrayvers.Attribute{{Name: "A", Type: arrayvers.Int32}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		g, err := arrayvers.NewDense(arrayvers.Int32, []int64{32, 32})
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < g.NumCells(); i++ {
			g.SetBits(i, int64(v)*10+i%7)
		}
		if _, err := store.Insert("Example", arrayvers.DensePayload(g)); err != nil {
			t.Fatal(err)
		}
	}

	// select forms
	if _, err := store.Select("Example", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := store.SelectRegion("Example", 3, arrayvers.NewBox([]int64{0, 0}, []int64{4, 4})); err != nil {
		t.Fatal(err)
	}
	stack, err := store.SelectMulti("Example", []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if stack.NDim() != 3 {
		t.Fatalf("stack shape %v", stack.Shape())
	}

	// branch + delta-list + reorganize through the facade
	if err := store.Branch("Example", 2, "Fork"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Insert("Fork", arrayvers.DeltaListPayload(1, []arrayvers.CellUpdate{
		{Coords: []int64{0, 0}, Bits: 777},
	})); err != nil {
		t.Fatal(err)
	}
	err = store.Reorganize("Example", arrayvers.ReorganizeOptions{
		Policy:   arrayvers.PolicyWorkloadAware,
		Workload: []arrayvers.Query{arrayvers.Snapshot(4, 0.9), arrayvers.Range(1, 4, 0.1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := store.Select("Fork", 2)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Dense.Bits(0) != 777 {
		t.Fatal("delta-list content lost through the facade")
	}

	// AQL through the facade
	engine := arrayvers.NewEngine(store)
	res, err := engine.Execute("VERSIONS(Example);")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 4 {
		t.Fatalf("AQL versions: %v", res.Names)
	}

	// stats and info
	if store.Stats().ChunksWritten == 0 {
		t.Fatal("no writes counted")
	}
	info, err := store.Info("Example")
	if err != nil || info.NumVersions != 4 {
		t.Fatalf("info: %+v, %v", info, err)
	}
}

func TestPublicSparseAPI(t *testing.T) {
	store, err := arrayvers.Open(t.TempDir(), arrayvers.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	err = store.CreateArray(arrayvers.Schema{
		Name:  "S",
		Dims:  []arrayvers.Dimension{{Name: "I", Lo: 0, Hi: 999}, {Name: "J", Lo: 0, Hi: 999}},
		Attrs: []arrayvers.Attribute{{Name: "W", Type: arrayvers.Int32}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := arrayvers.NewSparse(arrayvers.Int32, []int64{1000, 1000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp.SetBits(5, 9)
	if _, err := store.Insert("S", arrayvers.SparsePayload(sp)); err != nil {
		t.Fatal(err)
	}
	got, err := store.Select("S", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsSparse() || got.Sparse.Bits(5) != 9 {
		t.Fatal("sparse roundtrip through facade failed")
	}
}
